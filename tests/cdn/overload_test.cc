// Overload control: watermark verdicts and sliding windows, deadline
// propagation (ingress refusal, leg cancellation, cross-hop decrement),
// retry budgets, and the admission precedence order of
// docs/overload-model.md.
#include "cdn/overload.h"

#include <gtest/gtest.h>

#include "cdn/logic.h"
#include "cdn/node.h"
#include "http/generator.h"
#include "net/fault.h"
#include "net/handler.h"

namespace rangeamp::cdn {
namespace {

using http::Request;
using http::Response;

// A minimal origin that records every request it is asked to serve, so
// tests can assert exactly what (and how much) a node forwarded upstream.
class CaptureOrigin final : public net::HttpHandler {
 public:
  http::Response handle(const http::Request& request) override {
    requests_.push_back(request);
    http::Response resp;
    resp.status = 200;
    resp.body = http::Body::literal("0123456789abcdef");
    resp.headers.add("Content-Length", std::to_string(resp.body.size()));
    resp.headers.add("Content-Type", "application/octet-stream");
    resp.headers.add("ETag", "\"cap-1\"");
    return resp;
  }

  const std::vector<http::Request>& requests() const noexcept {
    return requests_;
  }

 private:
  std::vector<http::Request> requests_;
};

VendorProfile overload_profile(OverloadPolicy overload) {
  VendorProfile profile;
  profile.traits.name = "TestCDN";
  profile.traits.response_identity_headers = {{"Server", "TestCDN"}};
  profile.traits.multipart_boundary = "test_boundary_123";
  profile.traits.overload = std::move(overload);
  profile.logic = std::make_unique<DeletionLogic>();
  return profile;
}

Request plain_get(std::string target) {
  return http::make_get("site.example", std::move(target));
}

// ---------------------------------------------------------------------------
// OverloadManager: watermark verdicts and sliding windows.
// ---------------------------------------------------------------------------

TEST(OverloadManager, DisabledAlwaysAdmits) {
  OverloadManager manager{OverloadPolicy{}};
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kAdmit);
  manager.note_queued(0);
  manager.note_inflight(0, 100);
  manager.note_body_bytes(0, 1 << 20);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kAdmit);
  EXPECT_EQ(manager.queued(0), 0u);  // disabled knobs record nothing
  EXPECT_EQ(manager.inflight(0), 0u);
}

TEST(OverloadManager, QueueWatermarksDegradeThenShedThenExpire) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 1.0;
  policy.watermarks.queue_low = 2;
  policy.watermarks.queue_high = 4;
  OverloadManager manager{policy};

  manager.note_queued(0);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kAdmit);  // 1 < low
  manager.note_queued(0);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kDegrade);  // 2 in [low, high)
  EXPECT_EQ(manager.last_pressure_dim(), PressureDim::kQueue);
  manager.note_queued(0);
  manager.note_queued(0);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kShed);  // 4 >= high
  // The window slides: at t=1 every entry has expired.
  EXPECT_EQ(manager.queued(1.0), 0u);
  EXPECT_EQ(manager.admit(1.0), OverloadVerdict::kAdmit);
  EXPECT_EQ(manager.last_pressure_dim(), PressureDim::kNone);
}

TEST(OverloadManager, ConcurrencyExpiresAtTransferCompletion) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.concurrency_low = 1;
  policy.watermarks.concurrency_high = 2;
  OverloadManager manager{policy};

  manager.note_inflight(0, 0.5);
  EXPECT_EQ(manager.inflight(0), 1u);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kDegrade);
  EXPECT_EQ(manager.last_pressure_dim(), PressureDim::kConcurrency);
  manager.note_inflight(0, 2.0);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kShed);
  // The 0.5s transfer completed; only the 2.0s one still occupies a slot.
  EXPECT_EQ(manager.inflight(1.0), 1u);
  EXPECT_EQ(manager.admit(1.0), OverloadVerdict::kDegrade);
  EXPECT_EQ(manager.admit(3.0), OverloadVerdict::kAdmit);
}

TEST(OverloadManager, BodyBytesDimension) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 1.0;
  policy.watermarks.body_bytes_low = 100;
  policy.watermarks.body_bytes_high = 1000;
  OverloadManager manager{policy};

  manager.note_body_bytes(0, 150);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kDegrade);
  EXPECT_EQ(manager.last_pressure_dim(), PressureDim::kBodyBytes);
  manager.note_body_bytes(0, 900);
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kShed);
  EXPECT_EQ(manager.body_bytes(0.5), 1050u);
  EXPECT_EQ(manager.admit(1.0), OverloadVerdict::kAdmit);
}

TEST(OverloadManager, MostSevereDimensionWins) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 10.0;
  policy.watermarks.concurrency_low = 1;
  policy.watermarks.concurrency_high = 100;  // degrade band only
  policy.watermarks.queue_low = 1;
  policy.watermarks.queue_high = 2;
  OverloadManager manager{policy};

  manager.note_inflight(0, 5.0);  // concurrency: degrade
  manager.note_queued(0);
  manager.note_queued(0);  // queue: shed
  EXPECT_EQ(manager.admit(0), OverloadVerdict::kShed);
  EXPECT_EQ(manager.last_pressure_dim(), PressureDim::kQueue);
}

// ---------------------------------------------------------------------------
// OverloadManager: retry budget.
// ---------------------------------------------------------------------------

TEST(OverloadManager, RetryAllowanceFollowsRatio) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.5;
  policy.retry_budget.min_retries = 0;
  policy.retry_budget.window_seconds = 10.0;
  OverloadManager manager{policy};

  EXPECT_EQ(manager.retry_allowance(0), 0);
  EXPECT_FALSE(manager.try_start_retry(0));
  manager.note_first_attempt(0);
  manager.note_first_attempt(0);
  manager.note_first_attempt(0);
  EXPECT_EQ(manager.retry_allowance(0), 1);  // floor(0.5 * 3)
  EXPECT_TRUE(manager.try_start_retry(0));
  EXPECT_FALSE(manager.try_start_retry(0));  // allowance spent
}

TEST(OverloadManager, MinRetriesIsAFloor) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.0;
  policy.retry_budget.min_retries = 2;
  OverloadManager manager{policy};

  // No first attempts at all: the floor still grants two retries.
  EXPECT_TRUE(manager.try_start_retry(0));
  EXPECT_TRUE(manager.try_start_retry(0));
  EXPECT_FALSE(manager.try_start_retry(0));
}

TEST(OverloadManager, ChainAttemptsConsumeTheSameBudget) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.0;
  policy.retry_budget.min_retries = 1;
  OverloadManager manager{policy};

  manager.note_chain_attempt(0);  // an upstream hop retried through us
  EXPECT_EQ(manager.retry_allowance(0), 0);
  EXPECT_FALSE(manager.try_start_retry(0));
}

TEST(OverloadManager, WindowExpiryRestoresTheAllowance) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.0;
  policy.retry_budget.min_retries = 1;
  policy.retry_budget.window_seconds = 1.0;
  OverloadManager manager{policy};

  EXPECT_TRUE(manager.try_start_retry(0));
  EXPECT_EQ(manager.retry_allowance(0), 0);
  EXPECT_EQ(manager.retries_in_window(0.5), 1u);
  EXPECT_EQ(manager.retry_allowance(1.0), 1);  // the granted retry aged out
}

// ---------------------------------------------------------------------------
// Deadline header vocabulary.
// ---------------------------------------------------------------------------

TEST(DeadlineHeaders, ParseAcceptsPlainSeconds) {
  EXPECT_EQ(parse_deadline_budget("1.5"), 1.5);
  EXPECT_EQ(parse_deadline_budget("0"), 0.0);
  EXPECT_EQ(parse_deadline_budget("10"), 10.0);
  EXPECT_DOUBLE_EQ(*parse_deadline_budget("007.250000"), 7.25);
}

TEST(DeadlineHeaders, ParseRejectsEverythingElse) {
  EXPECT_FALSE(parse_deadline_budget(""));
  EXPECT_FALSE(parse_deadline_budget("-1"));
  EXPECT_FALSE(parse_deadline_budget("+1"));
  EXPECT_FALSE(parse_deadline_budget("1e3"));
  EXPECT_FALSE(parse_deadline_budget("1."));
  EXPECT_FALSE(parse_deadline_budget(".5"));
  EXPECT_FALSE(parse_deadline_budget("abc"));
  EXPECT_FALSE(parse_deadline_budget("1.5x"));
  EXPECT_FALSE(parse_deadline_budget("1.5 "));
  EXPECT_FALSE(parse_deadline_budget("999999999999999999999999999999999"));
}

TEST(DeadlineHeaders, FormatIsCanonicalAndRoundTrips) {
  EXPECT_EQ(format_deadline_budget(1.5), "1.500000");
  EXPECT_EQ(format_deadline_budget(0), "0.000000");
  EXPECT_EQ(format_deadline_budget(-2), "0.000000");  // clamped
  EXPECT_DOUBLE_EQ(*parse_deadline_budget(format_deadline_budget(4.25)), 4.25);
}

TEST(DeadlineHeaders, AttemptCountParse) {
  EXPECT_EQ(parse_attempt_count("1"), 1);
  EXPECT_EQ(parse_attempt_count("17"), 17);
  EXPECT_FALSE(parse_attempt_count("0"));
  EXPECT_FALSE(parse_attempt_count("-2"));
  EXPECT_FALSE(parse_attempt_count(""));
  EXPECT_FALSE(parse_attempt_count("abc"));
  EXPECT_FALSE(parse_attempt_count("1x"));
}

// ---------------------------------------------------------------------------
// Node integration: watermark shedding and degradation.
// ---------------------------------------------------------------------------

TEST(NodeOverload, HighWatermarkSheds503WithRetryAfter) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 100.0;  // no clock: nothing expires
  policy.watermarks.queue_high = 2;
  CaptureOrigin origin;
  CdnNode node(overload_profile(policy), origin);

  EXPECT_NE(node.handle(plain_get("/a.bin")).status, 503);
  EXPECT_NE(node.handle(plain_get("/b.bin")).status, 503);
  const Response shed = node.handle(plain_get("/c.bin"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.headers.get_or("Retry-After", ""), "30");
  EXPECT_EQ(origin.requests().size(), 2u);  // the shed miss never went up

  EXPECT_EQ(node.overload_stats().admitted, 2u);
  EXPECT_EQ(node.overload_stats().shed_high_watermark, 1u);
  EXPECT_EQ(node.shield_stats().shed_responses, 1u);
}

TEST(NodeOverload, DegradeBandWithoutStaleCopySheds503) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 100.0;
  policy.watermarks.queue_low = 1;
  policy.watermarks.queue_high = 10;
  CaptureOrigin origin;
  CdnNode node(overload_profile(policy), origin);

  EXPECT_NE(node.handle(plain_get("/a.bin")).status, 503);
  const Response degraded = node.handle(plain_get("/b.bin"));
  EXPECT_EQ(degraded.status, 503);  // in the band, nothing stale to serve
  EXPECT_EQ(degraded.headers.get_or("Retry-After", ""), "30");
  EXPECT_EQ(node.overload_stats().degraded, 1u);
  EXPECT_EQ(node.overload_stats().stale_under_pressure, 0u);
  EXPECT_EQ(origin.requests().size(), 1u);
}

TEST(NodeOverload, StaleHitUnderPressureSkipsRevalidation) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 1.0;
  policy.watermarks.queue_low = 1;
  policy.watermarks.queue_high = 10;
  VendorProfile profile = overload_profile(policy);
  profile.traits.cache_ttl_seconds = 60;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  double now = 0;
  node.set_clock([&] { return now; });

  EXPECT_EQ(node.handle(plain_get("/r.bin")).status, 200);  // prime the cache
  now = 120;                                                // entry is stale
  EXPECT_NE(node.handle(plain_get("/other.bin")).status, 503);  // pressure: 1
  ASSERT_EQ(origin.requests().size(), 2u);

  // The stale hit absorbs the request with zero upstream cost: no
  // conditional GET, a Warning 110 marks the degraded answer.
  const Response stale = node.handle(plain_get("/r.bin"));
  EXPECT_EQ(stale.status, 200);
  EXPECT_EQ(stale.headers.get_or("Warning", ""), "110 - \"Response is Stale\"");
  EXPECT_EQ(origin.requests().size(), 2u);
  EXPECT_EQ(node.overload_stats().stale_under_pressure, 1u);
}

// ---------------------------------------------------------------------------
// Node integration: deadlines.
// ---------------------------------------------------------------------------

TEST(NodeOverload, DeadlineBelowPerHopMinimumIsRefusedAtIngress) {
  OverloadPolicy policy;
  policy.deadline.enabled = true;
  policy.deadline.per_hop_min_seconds = 0.05;
  CaptureOrigin origin;
  CdnNode node(overload_profile(policy), origin);

  Request expired = plain_get("/r.bin");
  expired.headers.add(std::string{kDeadlineBudgetHeader}, "0.010000");
  const Response resp = node.handle(expired);
  EXPECT_EQ(resp.status, 504);
  EXPECT_TRUE(origin.requests().empty());  // refused before any processing
  EXPECT_EQ(node.overload_stats().deadline_rejected_ingress, 1u);

  // Without the header the default budget applies and the request proceeds.
  EXPECT_EQ(node.handle(plain_get("/r.bin")).status, 200);
  EXPECT_EQ(origin.requests().size(), 1u);
}

TEST(NodeOverload, DeadlineCancelsASlowLegAndNeverStores) {
  OverloadPolicy policy;
  policy.deadline.enabled = true;
  policy.deadline.default_budget_seconds = 1.0;
  VendorProfile profile = overload_profile(policy);
  profile.traits.resilience.max_retries = 2;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::latency(2.0));
  node.set_upstream_fault_injector(&faults);

  const Response resp = node.handle(plain_get("/r.bin"));
  EXPECT_EQ(resp.status, 504);
  // The budget bounded the attempt timeout: the leg was cut before the
  // response crossed, and a deadline-expired leg is never retried.
  EXPECT_TRUE(origin.requests().empty());
  EXPECT_EQ(faults.transfers_seen(), 1u);
  EXPECT_EQ(node.overload_stats().deadline_cancelled_legs, 1u);

  // Nothing was stored: with the fault cleared, the same request must go
  // upstream again instead of hitting the cache.
  faults.clear_rules();
  EXPECT_EQ(node.handle(plain_get("/r.bin")).status, 200);
  EXPECT_EQ(origin.requests().size(), 1u);
}

TEST(NodeOverload, DeadlineDecrementIsPropagatedAcrossARetry) {
  OverloadPolicy policy;
  policy.deadline.enabled = true;
  policy.deadline.default_budget_seconds = 5.0;
  VendorProfile profile = overload_profile(policy);
  profile.traits.resilience.max_retries = 2;
  profile.traits.resilience.backoff_initial_seconds = 0.5;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_first(1, net::FaultSpec::reset());
  node.set_upstream_fault_injector(&faults);

  EXPECT_EQ(node.handle(plain_get("/r.bin")).status, 200);
  // The first leg (budget 5.000000) was reset before reaching the origin;
  // the retry's stamp shows the backoff-decremented budget.
  ASSERT_EQ(origin.requests().size(), 1u);
  EXPECT_EQ(origin.requests().front().headers.get_or(
                std::string{kDeadlineBudgetHeader}, ""),
            "4.500000");
}

// ---------------------------------------------------------------------------
// Node integration: retry budget.
// ---------------------------------------------------------------------------

TEST(NodeOverload, RetryBudgetFloorBoundsAttemptsBelowMaxRetries) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.0;
  policy.retry_budget.min_retries = 1;
  policy.retry_budget.window_seconds = 100.0;
  VendorProfile profile = overload_profile(policy);
  profile.traits.resilience.max_retries = 5;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  node.set_upstream_fault_injector(&faults);

  const Response resp = node.handle(plain_get("/r.bin"));
  EXPECT_EQ(resp.status, 502);
  // The per-request policy would try 6 times; the budget granted one retry.
  EXPECT_EQ(faults.transfers_seen(), 2u);
  EXPECT_EQ(node.overload_stats().attempts.first_attempts, 1u);
  EXPECT_EQ(node.overload_stats().attempts.retries, 1u);
  EXPECT_EQ(node.overload_stats().retries_denied, 1u);
}

TEST(NodeOverload, IncomingChainAttemptChargesTheLocalBudget) {
  OverloadPolicy policy;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.0;
  policy.retry_budget.min_retries = 1;
  VendorProfile profile = overload_profile(policy);
  profile.traits.resilience.max_retries = 5;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  node.set_upstream_fault_injector(&faults);

  // An upstream hop is on its third attempt through us: that chain retry
  // consumes this hop's floor, so our own retry is denied outright.
  Request retried = plain_get("/r.bin");
  retried.headers.add(std::string{kAttemptCountHeader}, "3");
  node.handle(retried);
  EXPECT_EQ(faults.transfers_seen(), 1u);
  EXPECT_EQ(node.overload_stats().chain_attempts, 1u);
  EXPECT_EQ(node.overload_stats().retries_denied, 1u);
}

// ---------------------------------------------------------------------------
// Precedence.
// ---------------------------------------------------------------------------

TEST(NodeOverload, CoalescedFillOutranksShedding) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 100.0;
  policy.watermarks.queue_high = 1;
  VendorProfile profile = overload_profile(policy);
  profile.traits.shield.coalescing.enabled = true;
  // Pass-through edge: with the store disabled, the identical second miss
  // reaches the fill lock instead of turning into a plain cache hit.
  profile.traits.cache_enabled = false;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);

  Request ranged = plain_get("/r.bin?bust=1");
  ranged.headers.add("Range", "bytes=0-0");
  EXPECT_NE(node.handle(ranged).status, 503);  // leader: queue now at high
  // The identical miss replays the held fill despite the high watermark --
  // answering it costs the origin nothing.
  EXPECT_NE(node.handle(ranged).status, 503);
  EXPECT_EQ(node.shield_stats().coalesced_hits, 1u);
  EXPECT_EQ(node.overload_stats().shed_high_watermark, 0u);
  EXPECT_EQ(origin.requests().size(), 1u);

  // A different key has no fill to ride: it is shed.
  EXPECT_EQ(node.handle(plain_get("/other.bin")).status, 503);
  EXPECT_EQ(node.overload_stats().shed_high_watermark, 1u);
}

TEST(NodeOverload, OverloadShedPrecedesTheBreaker) {
  OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 100.0;
  policy.watermarks.queue_high = 1;
  VendorProfile profile = overload_profile(policy);
  profile.traits.shield.breaker.enabled = true;
  profile.traits.shield.breaker.consecutive_failures_trip = 1;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  node.set_upstream_fault_injector(&faults);

  node.handle(plain_get("/a.bin"));  // admitted; the failure trips the breaker
  EXPECT_EQ(node.breaker().state(), UpstreamBreaker::State::kOpen);

  // The next miss is shed by the watermark layer before fetch_result ever
  // consults the (open) breaker.
  const Response shed = node.handle(plain_get("/b.bin"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.materialize().find("overload control"), std::string::npos);
  EXPECT_EQ(node.overload_stats().shed_high_watermark, 1u);
  EXPECT_EQ(node.shield_stats().shed_breaker_open, 0u);
}

TEST(NodeOverload, KnobsOffLeavesNoTrace) {
  VendorProfile profile = overload_profile(OverloadPolicy{});
  profile.traits.resilience.max_retries = 2;
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin);
  net::FaultInjector faults;
  faults.fail_first(1, net::FaultSpec::reset());
  node.set_upstream_fault_injector(&faults);

  EXPECT_EQ(node.handle(plain_get("/r.bin")).status, 200);
  // With every knob off the subsystem is invisible: zero counters, and no
  // internal headers reach the upstream.
  const OverloadStats& stats = node.overload_stats();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.shed_high_watermark, 0u);
  EXPECT_EQ(stats.attempts.total(), 0u);
  EXPECT_EQ(stats.retries_denied, 0u);
  ASSERT_EQ(origin.requests().size(), 1u);
  EXPECT_FALSE(
      origin.requests().front().headers.get(kDeadlineBudgetHeader).has_value());
  EXPECT_FALSE(
      origin.requests().front().headers.get(kAttemptCountHeader).has_value());
}

}  // namespace
}  // namespace rangeamp::cdn
