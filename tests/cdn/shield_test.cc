// Origin-shielding layer: CDN-Loop parsing and rejection, Via emission,
// request coalescing, and the upstream circuit breaker.
#include "cdn/shield.h"

#include <gtest/gtest.h>

#include "cdn/node.h"
#include "cdn/profiles.h"
#include "core/testbed.h"
#include "http/generator.h"
#include "http/serialize.h"
#include "net/fault.h"

namespace rangeamp::cdn {
namespace {

// A minimal origin that records every request it is asked to serve, so tests
// can assert exactly what a node forwarded upstream.
class CaptureOrigin final : public net::HttpHandler {
 public:
  http::Response handle(const http::Request& request) override {
    requests_.push_back(request);
    http::Response resp;
    resp.status = 200;
    resp.body = http::Body::literal("0123456789abcdef");
    resp.headers.add("Content-Length", std::to_string(resp.body.size()));
    resp.headers.add("Content-Type", "application/octet-stream");
    resp.headers.add("ETag", "\"cap-1\"");
    return resp;
  }

  const std::vector<http::Request>& requests() const noexcept {
    return requests_;
  }

 private:
  std::vector<http::Request> requests_;
};

// ---------------------------------------------------------------------------
// CDN-Loop parsing.
// ---------------------------------------------------------------------------

TEST(CdnLoopParse, BareIds) {
  const auto parsed = parse_cdn_loop("fastly, akamai , cloudflare:443");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].id, "fastly");
  EXPECT_EQ((*parsed)[1].id, "akamai");
  EXPECT_EQ((*parsed)[2].id, "cloudflare:443");
  EXPECT_TRUE((*parsed)[0].params.empty());
}

TEST(CdnLoopParse, ParametersAreCarriedOpaquely) {
  const auto parsed = parse_cdn_loop("akamai; asn=20940; region=eu");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().id, "akamai");
  EXPECT_EQ(parsed->front().params, "asn=20940;region=eu");
}

TEST(CdnLoopParse, QuotedStringsHideSeparators) {
  const auto parsed = parse_cdn_loop("edge; note=\"a,b;\\\"c\", fastly");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->front().id, "edge");
  EXPECT_EQ(parsed->front().params, "note=\"a,b;\\\"c\"");
  EXPECT_EQ(parsed->back().id, "fastly");
}

TEST(CdnLoopParse, RejectsGarbage) {
  EXPECT_FALSE(parse_cdn_loop(""));
  EXPECT_FALSE(parse_cdn_loop("a,,b"));            // empty element
  EXPECT_FALSE(parse_cdn_loop(", a"));             // leading empty element
  EXPECT_FALSE(parse_cdn_loop("a; "));             // empty parameter
  EXPECT_FALSE(parse_cdn_loop("bad id"));          // space inside cdn-id
  EXPECT_FALSE(parse_cdn_loop("a=\"unbalanced")); // unterminated quote
  EXPECT_FALSE(parse_cdn_loop("id\x01"));          // control byte
}

TEST(CdnLoopParse, RoundTripsThroughCanonicalSpelling) {
  const auto parsed =
      parse_cdn_loop("Fastly ,akamai;a=1 ;b=\"x;y\" , edge-7");
  ASSERT_TRUE(parsed);
  const auto again = parse_cdn_loop(cdn_loop_to_string(*parsed));
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, *parsed);
}

TEST(CdnLoopParse, ContainsIsCaseInsensitive) {
  const auto parsed = parse_cdn_loop("Fastly, AKAMAI");
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(cdn_loop_contains(*parsed, "fastly"));
  EXPECT_TRUE(cdn_loop_contains(*parsed, "akamai"));
  EXPECT_FALSE(cdn_loop_contains(*parsed, "cloudflare"));
}

TEST(CdnLoopParse, DefaultTokenFromVendorName) {
  EXPECT_EQ(default_cdn_loop_token("Akamai"), "akamai");
  EXPECT_EQ(default_cdn_loop_token("Alibaba Cloud"), "alibaba-cloud");
  EXPECT_EQ(default_cdn_loop_token("StackPath / Highwinds"),
            "stackpath-/-highwinds");
}

// ---------------------------------------------------------------------------
// Loop defense at the node.
// ---------------------------------------------------------------------------

VendorProfile shielded_profile(OriginShieldPolicy shield,
                               bool cache_enabled = true) {
  VendorProfile profile = make_profile(Vendor::kAkamai);
  profile.traits.shield = std::move(shield);
  profile.traits.cache_enabled = cache_enabled;
  return profile;
}

OriginShieldPolicy loop_shield(std::size_t max_hops = 8) {
  OriginShieldPolicy shield;
  shield.loop.enabled = true;
  shield.loop.max_hops = max_hops;
  return shield;
}

http::Request ranged_get(const std::string& path) {
  auto request = http::make_get(std::string{core::kDefaultHost}, path);
  request.headers.add("Range", "bytes=0-0");
  return request;
}

TEST(ShieldLoop, RejectsSelfRecurrenceWith508) {
  core::SingleCdnTestbed bed(shielded_profile(loop_shield()));
  bed.origin().resources().add_synthetic("/a.bin", 4096);

  auto request = ranged_get("/a.bin");
  request.headers.add("CDN-Loop", "akamai");
  const auto response = bed.send(request);
  EXPECT_EQ(response.status, 508);
  EXPECT_EQ(bed.cdn().shield_stats().loop_rejected, 1u);
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 0u);
}

TEST(ShieldLoop, SelfDetectionIsCaseInsensitive) {
  core::SingleCdnTestbed bed(shielded_profile(loop_shield()));
  bed.origin().resources().add_synthetic("/a.bin", 4096);
  auto request = ranged_get("/a.bin");
  request.headers.add("CDN-Loop", "AkaMai; asn=1");
  EXPECT_EQ(bed.send(request).status, 508);
}

TEST(ShieldLoop, ForeignChainPassesAndIsExtendedUpstream) {
  CaptureOrigin origin;
  CdnNode node(shielded_profile(loop_shield()), origin, "cdn-origin");

  auto request = ranged_get("/a.bin");
  request.headers.add("CDN-Loop", "fastly");
  const auto response = node.handle(request);
  EXPECT_LT(response.status, 500);
  ASSERT_EQ(origin.requests().size(), 1u);
  const auto chain = origin.requests().front().headers.get_all("CDN-Loop");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], "fastly");
  EXPECT_EQ(chain[1], "akamai");
}

TEST(ShieldLoop, HopCapRejectsLongChains) {
  core::SingleCdnTestbed bed(shielded_profile(loop_shield(/*max_hops=*/3)));
  bed.origin().resources().add_synthetic("/a.bin", 4096);

  auto ok = ranged_get("/a.bin?1");
  ok.headers.add("CDN-Loop", "a, b");
  EXPECT_LT(bed.send(ok).status, 500);

  auto rejected = ranged_get("/a.bin?2");
  rejected.headers.add("CDN-Loop", "a, b, c");
  EXPECT_EQ(bed.send(rejected).status, 508);
  EXPECT_EQ(bed.cdn().shield_stats().hop_cap_rejected, 1u);
}

TEST(ShieldLoop, MalformedChainFailsClosed) {
  core::SingleCdnTestbed bed(shielded_profile(loop_shield()));
  bed.origin().resources().add_synthetic("/a.bin", 4096);
  auto request = ranged_get("/a.bin");
  request.headers.add("CDN-Loop", "broken id, ,");
  EXPECT_EQ(bed.send(request).status, 400);
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 0u);
}

TEST(ShieldLoop, DisabledShieldIgnoresAndDoesNotEmit) {
  CaptureOrigin origin;
  CdnNode node(make_profile(Vendor::kAkamai), origin, "cdn-origin");
  auto request = ranged_get("/a.bin");
  request.headers.add("CDN-Loop", "akamai");  // would be a self-loop if on
  const auto response = node.handle(request);
  EXPECT_LT(response.status, 500);
  ASSERT_EQ(origin.requests().size(), 1u);
  // The incoming chain is still forwarded (it is an end-to-end header),
  // but the node appends nothing.
  const auto chain = origin.requests().front().headers.get_all("CDN-Loop");
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], "akamai");
}

// ---------------------------------------------------------------------------
// Via emission.
// ---------------------------------------------------------------------------

TEST(ShieldVia, EmittedOnForwardedRequestAndResponse) {
  // Cloudflare has no canonical Via among its identity headers, so the
  // node's own hop line is the only one.
  VendorProfile profile = make_profile(Vendor::kCloudflare);
  profile.traits.emit_via = true;
  profile.traits.node_id = "cf-n3";
  CaptureOrigin origin;
  CdnNode node(std::move(profile), origin, "cdn-origin");

  const auto response = node.handle(ranged_get("/a.bin"));
  EXPECT_EQ(response.headers.get_or("Via", ""), "1.1 cf-n3");
  ASSERT_EQ(origin.requests().size(), 1u);
  EXPECT_EQ(origin.requests().front().headers.get_or("Via", ""), "1.1 cf-n3");
}

TEST(ShieldVia, ViaLineIsByteAccounted) {
  const auto serialized_size_with = [](bool emit_via) {
    VendorProfile profile = make_profile(Vendor::kAkamai);
    profile.traits.emit_via = emit_via;
    profile.traits.node_id = "akamai-n3";
    CaptureOrigin origin;
    CdnNode node(std::move(profile), origin, "cdn-origin");
    return http::serialized_size(node.handle(ranged_get("/a.bin")));
  };
  const std::uint64_t off = serialized_size_with(false);
  const std::uint64_t on = serialized_size_with(true);
  // "Via: 1.1 akamai-n3\r\n" = 20 bytes on the wire.
  EXPECT_EQ(on, off + 20);
}

TEST(ShieldVia, OffByDefault) {
  CaptureOrigin origin;
  CdnNode node(make_profile(Vendor::kCloudflare), origin, "cdn-origin");
  const auto response = node.handle(ranged_get("/a.bin"));
  EXPECT_FALSE(response.headers.get("Via"));
  ASSERT_EQ(origin.requests().size(), 1u);
  EXPECT_FALSE(origin.requests().front().headers.get("Via"));
}

// ---------------------------------------------------------------------------
// Request coalescing.
// ---------------------------------------------------------------------------

OriginShieldPolicy coalescing_shield(double window_seconds = 1.0) {
  OriginShieldPolicy shield;
  shield.coalescing.enabled = true;
  shield.coalescing.window_seconds = window_seconds;
  return shield;
}

TEST(ShieldCoalescing, SameKeyBurstCostsOneOriginFetch) {
  // A pass-through (no-store) edge: without the fill lock every one of the
  // five identical misses would hit the origin.
  core::SingleCdnTestbed bed(
      shielded_profile(coalescing_shield(), /*cache_enabled=*/false));
  bed.origin().resources().add_synthetic("/a.bin", 1u << 20);

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(bed.send(ranged_get("/a.bin?burst")).status, 206);
  }
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 1u);
  EXPECT_EQ(bed.cdn().shield_stats().fill_fetches, 1u);
  EXPECT_EQ(bed.cdn().shield_stats().coalesced_hits, 4u);
}

TEST(ShieldCoalescing, ReplaysTheLeadersExactResponse) {
  core::SingleCdnTestbed bed(
      shielded_profile(coalescing_shield(), /*cache_enabled=*/false));
  bed.origin().resources().add_synthetic("/a.bin", 4096);
  const auto leader = bed.send(ranged_get("/a.bin?k"));
  const auto follower = bed.send(ranged_get("/a.bin?k"));
  EXPECT_EQ(http::to_bytes(follower), http::to_bytes(leader));
}

TEST(ShieldCoalescing, DistinctRangesFillSeparately) {
  core::SingleCdnTestbed bed(
      shielded_profile(coalescing_shield(), /*cache_enabled=*/false));
  bed.origin().resources().add_synthetic("/a.bin", 4096);

  auto first = http::make_get(std::string{core::kDefaultHost}, "/a.bin?k");
  first.headers.add("Range", "bytes=0-0");
  auto second = http::make_get(std::string{core::kDefaultHost}, "/a.bin?k");
  second.headers.add("Range", "bytes=1-1");
  bed.send(first);
  bed.send(second);
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 2u);
  EXPECT_EQ(bed.cdn().shield_stats().coalesced_hits, 0u);
}

TEST(ShieldCoalescing, FillLockExpiresWithTheWindow) {
  core::SingleCdnTestbed bed(
      shielded_profile(coalescing_shield(/*window_seconds=*/1.0),
                       /*cache_enabled=*/false));
  bed.origin().resources().add_synthetic("/a.bin", 4096);
  double now = 0.0;
  bed.cdn().set_clock([&now] { return now; });

  bed.send(ranged_get("/a.bin?k"));
  now = 0.5;  // inside the window: coalesced
  bed.send(ranged_get("/a.bin?k"));
  now = 2.0;  // window expired: a fresh fill
  bed.send(ranged_get("/a.bin?k"));
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 2u);
  EXPECT_EQ(bed.cdn().shield_stats().fill_fetches, 2u);
  EXPECT_EQ(bed.cdn().shield_stats().coalesced_hits, 1u);
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine.
// ---------------------------------------------------------------------------

CircuitBreakerPolicy breaker_policy(int trip = 3, double open_seconds = 30) {
  CircuitBreakerPolicy policy;
  policy.enabled = true;
  policy.consecutive_failures_trip = trip;
  policy.open_seconds = open_seconds;
  return policy;
}

TEST(UpstreamBreakerTest, TripsAfterConsecutiveFailures) {
  UpstreamBreaker breaker(breaker_policy(3));
  breaker.on_failure(0);
  breaker.on_failure(0);
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kClosed);
  breaker.on_success();  // success resets the streak
  breaker.on_failure(0);
  breaker.on_failure(0);
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kClosed);
  breaker.on_failure(0);
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.admit(10), ShedCause::kBreakerOpen);
}

TEST(UpstreamBreakerTest, HalfOpenProbeClosesOnSuccess) {
  UpstreamBreaker breaker(breaker_policy(1, 30));
  breaker.on_failure(0);
  EXPECT_EQ(breaker.admit(29), ShedCause::kBreakerOpen);
  EXPECT_EQ(breaker.admit(31), ShedCause::kNone);  // the probe
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.admit(31), ShedCause::kBreakerOpen);  // one probe only
  breaker.on_success();
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kClosed);
  EXPECT_EQ(breaker.admit(31), ShedCause::kNone);
}

TEST(UpstreamBreakerTest, HalfOpenProbeFailureReopens) {
  UpstreamBreaker breaker(breaker_policy(1, 30));
  breaker.on_failure(0);
  EXPECT_EQ(breaker.admit(31), ShedCause::kNone);
  breaker.on_failure(31);
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.admit(60), ShedCause::kBreakerOpen);  // 31 + 30 > 60
  EXPECT_EQ(breaker.admit(62), ShedCause::kNone);
}

TEST(UpstreamBreakerTest, AdmissionCapsBusyConnections) {
  CircuitBreakerPolicy policy = breaker_policy(/*trip=*/1000);
  policy.max_connections = 2;
  UpstreamBreaker breaker(policy);
  EXPECT_EQ(breaker.admit(0), ShedCause::kNone);
  breaker.occupy_connection(10);
  EXPECT_EQ(breaker.admit(0), ShedCause::kNone);
  breaker.occupy_connection(10);
  EXPECT_EQ(breaker.admit(5), ShedCause::kAdmission);
  EXPECT_EQ(breaker.admit(11), ShedCause::kNone);  // slots expired
}

TEST(UpstreamBreakerTest, DisabledPolicyIsInert) {
  UpstreamBreaker breaker(CircuitBreakerPolicy{});
  for (int i = 0; i < 100; ++i) breaker.on_failure(0);
  EXPECT_EQ(breaker.state(), UpstreamBreaker::State::kClosed);
  EXPECT_EQ(breaker.admit(0), ShedCause::kNone);
  EXPECT_EQ(breaker.trips(), 0u);
}

// ---------------------------------------------------------------------------
// Breaker at the node: shedding and serve-stale precedence.
// ---------------------------------------------------------------------------

TEST(ShieldBreaker, OpenCircuitSheds503WithRetryAfter) {
  OriginShieldPolicy shield;
  shield.breaker = breaker_policy(/*trip=*/2);
  shield.breaker.retry_after_seconds = 30;
  core::SingleCdnTestbed bed(shielded_profile(shield));
  bed.origin().resources().add_synthetic("/a.bin", 4096);

  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  bed.send(ranged_get("/a.bin?1"));  // failure 1
  bed.send(ranged_get("/a.bin?2"));  // failure 2: trips
  const auto shed = bed.send(ranged_get("/a.bin?3"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.headers.get_or("Retry-After", ""), "30");
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 2u);
  EXPECT_EQ(bed.cdn().shield_stats().breaker_trips, 1u);
  EXPECT_EQ(bed.cdn().shield_stats().shed_breaker_open, 1u);
  EXPECT_EQ(bed.cdn().shield_stats().shed_responses, 1u);
}

TEST(ShieldBreaker, ServeStaleOutranksTheOpenCircuit) {
  OriginShieldPolicy shield;
  shield.breaker = breaker_policy(/*trip=*/1, /*open_seconds=*/1000);
  VendorProfile profile = shielded_profile(shield);
  profile.traits.cache_ttl_seconds = 60;
  profile.traits.resilience.degradation = DegradationPolicy::kServeStale;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/a.bin", 4096);

  double now = 0.0;
  bed.cdn().set_clock([&now] { return now; });

  // Prime the cache healthy, then kill the origin and trip the breaker.
  EXPECT_EQ(bed.send(http::make_get(std::string{core::kDefaultHost}, "/a.bin"))
                .status,
            200);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);
  bed.send(ranged_get("/other.bin"));  // failure: trips the breaker

  // Past the TTL the cached copy is stale; the open circuit sheds the
  // revalidation, but the stale copy absorbs the shed.
  now = 120;
  const auto stale = bed.send(ranged_get("/a.bin"));
  EXPECT_EQ(stale.status, 206);
  EXPECT_EQ(stale.headers.get_or("Warning", ""),
            "111 - \"Revalidation Failed\"");

  // Without a stale copy the same shed surfaces as 503 + Retry-After.
  const auto shed = bed.send(ranged_get("/missing.bin"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_TRUE(shed.headers.get("Retry-After"));
}

}  // namespace
}  // namespace rangeamp::cdn
