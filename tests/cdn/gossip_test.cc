// Gossip detection layer (src/cdn/gossip.h): signature-table semantics,
// deterministic fabric schedules, and the resilience properties the
// distributed detector is specified against -- convergence despite injected
// message loss, and recovery after node churn.  All sim-clock driven and
// seeded; nothing here sleeps or reads a wall clock.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cdn/gossip.h"

namespace rangeamp::cdn {
namespace {

AttackSignature make_signature(const std::string& client_key,
                               double detected_at, double expires_at) {
  AttackSignature sig;
  sig.client_key = client_key;
  sig.base_key = "victim.example|/target.bin";
  sig.shape = core::RangeClass::kTinyClosed;
  sig.detected_at = detected_at;
  sig.expires_at = expires_at;
  sig.origin_node = 0;
  return sig;
}

DetectionPolicy make_policy() {
  DetectionPolicy policy;
  policy.enabled = true;
  policy.detector.window = 5;
  policy.detector.min_samples = 3;
  policy.signature_ttl_seconds = 1000;  // table tests drive expiry explicitly
  return policy;
}

// ---------------------------------------------------------------------------
// SignatureTable
// ---------------------------------------------------------------------------

TEST(SignatureTable, UpsertSuppressesDuplicatesKeepingHistory) {
  SignatureTable table(16);
  EXPECT_TRUE(table.upsert(make_signature("attacker", 2.0, 10.0), 0));
  // Re-detection of the same client: merged, not inserted -- earliest
  // detected_at (first alarm cluster-wide) and latest expires_at survive.
  EXPECT_FALSE(table.upsert(make_signature("attacker", 1.0, 8.0), 0));
  EXPECT_FALSE(table.upsert(make_signature("attacker", 5.0, 20.0), 0));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.duplicates_suppressed, 2u);

  const AttackSignature* sig = table.find_client("attacker", 0);
  ASSERT_NE(sig, nullptr);
  EXPECT_DOUBLE_EQ(sig->detected_at, 1.0);
  EXPECT_DOUBLE_EQ(sig->expires_at, 20.0);
}

TEST(SignatureTable, TtlExpiryDropsSignatures) {
  SignatureTable table(16);
  EXPECT_TRUE(table.upsert(make_signature("attacker", 0, 5.0), 0));
  EXPECT_NE(table.find_client("attacker", 4.9), nullptr);
  // An expired signature is dead even before a sweep removes it.
  EXPECT_EQ(table.find_client("attacker", 5.0), nullptr);
  EXPECT_EQ(table.expire(6.0), 1u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.expired_total, 1u);
  // A dead-on-arrival upsert never lands.
  EXPECT_FALSE(table.upsert(make_signature("late", 0, 5.0), 6.0));
}

TEST(SignatureTable, BoundedCapacityRejectsFreshInserts) {
  SignatureTable table(2);
  EXPECT_TRUE(table.upsert(make_signature("a", 0, 100), 0));
  EXPECT_TRUE(table.upsert(make_signature("b", 0, 100), 0));
  EXPECT_FALSE(table.upsert(make_signature("c", 0, 100), 0));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.rejected_full, 1u);
  // Duplicates of held keys still merge at capacity.
  EXPECT_FALSE(table.upsert(make_signature("a", 0, 200), 0));
  EXPECT_EQ(table.duplicates_suppressed, 1u);
}

TEST(SignatureTable, PatternMatchFindsShapeUnderAttack) {
  SignatureTable table(16);
  table.upsert(make_signature("attacker", 0, 100), 0);
  EXPECT_NE(table.find_pattern("victim.example|/target.bin",
                               core::RangeClass::kTinyClosed, 1.0),
            nullptr);
  EXPECT_EQ(table.find_pattern("victim.example|/target.bin",
                               core::RangeClass::kMulti, 1.0),
            nullptr);
  EXPECT_EQ(table.find_pattern("other.example|/x", // wrong base key
                               core::RangeClass::kTinyClosed, 1.0),
            nullptr);
}

// ---------------------------------------------------------------------------
// NodeDetection
// ---------------------------------------------------------------------------

core::DetectorSample attack_sample() {
  // The SBR signature: 1 selected byte of a 1 MiB resource, a full-entity
  // origin fetch behind a small client-facing response, never a cache hit.
  return core::make_detector_sample(
      /*selected=*/1, /*resource_bytes=*/1u << 20,
      /*client_delta=*/{200, 400}, /*origin_delta=*/{300, 1u << 20},
      "attacker", "victim.example|/target.bin",
      core::RangeClass::kTinyClosed);
}

TEST(NodeDetection, AlarmMintsSignatureAndRefreshesWhileHot) {
  NodeDetection detection(make_policy(), /*node_index=*/3);
  const AttackSignature* minted = nullptr;
  for (int i = 0; i < 5 && minted == nullptr; ++i) {
    minted = detection.observe(attack_sample(), /*now=*/1.0);
  }
  ASSERT_NE(minted, nullptr);
  EXPECT_EQ(minted->client_key, "attacker");
  EXPECT_EQ(minted->origin_node, 3u);
  EXPECT_EQ(detection.stats().alarms, 1u);

  // While the detector stays hot, further observations refresh the TTL
  // instead of minting again.
  EXPECT_EQ(detection.observe(attack_sample(), /*now=*/2.0), nullptr);
  const AttackSignature* held = detection.table().find_client("attacker", 2.0);
  ASSERT_NE(held, nullptr);
  EXPECT_DOUBLE_EQ(held->expires_at, 2.0 + make_policy().signature_ttl_seconds);
  EXPECT_EQ(detection.stats().alarms, 1u);
}

TEST(NodeDetection, MatchDistinguishesClientAndPattern) {
  DetectionPolicy policy = make_policy();
  policy.pattern_quarantine = true;
  NodeDetection detection(policy, 0);
  detection.table().upsert(make_signature("attacker", 0, 100), 0);

  EXPECT_EQ(detection.match("attacker", "anything", core::RangeClass::kNone,
                            1.0),
            NodeDetection::Match::kClient);
  EXPECT_EQ(detection.match("bystander", "victim.example|/target.bin",
                            core::RangeClass::kTinyClosed, 1.0),
            NodeDetection::Match::kPattern);
  EXPECT_EQ(detection.match("bystander", "victim.example|/target.bin",
                            core::RangeClass::kSingleClosed, 1.0),
            NodeDetection::Match::kNone);
}

TEST(NodeDetection, RestartLosesSoftState) {
  NodeDetection detection(make_policy(), 0);
  detection.table().upsert(make_signature("attacker", 0, 100), 0);
  for (int i = 0; i < 5; ++i) detection.observe(attack_sample(), 1.0);
  EXPECT_GT(detection.tracked_clients(), 0u);

  detection.restart();
  EXPECT_EQ(detection.table().size(), 0u);
  EXPECT_EQ(detection.tracked_clients(), 0u);
}

// ---------------------------------------------------------------------------
// GossipFabric
// ---------------------------------------------------------------------------

struct Fleet {
  std::vector<std::unique_ptr<NodeDetection>> owned;
  std::unique_ptr<GossipFabric> fabric;

  Fleet(std::size_t n, const GossipPolicy& gossip) {
    DetectionPolicy policy = make_policy();
    policy.gossip = gossip;
    std::vector<NodeDetection*> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<NodeDetection>(policy, i));
      nodes.push_back(owned.back().get());
    }
    fabric = std::make_unique<GossipFabric>(std::move(nodes), gossip);
  }

  /// Seeds one node's table and returns rounds until cluster-wide coverage
  /// (-1: not within `max_rounds`).  One advance() per round_seconds tick.
  int rounds_to_converge(int max_rounds) {
    owned[0]->table().upsert(make_signature("attacker", 0, 1e9), 0);
    for (int r = 1; r <= max_rounds; ++r) {
      const double now = static_cast<double>(r) *
                         fabric->policy().round_seconds;
      fabric->advance(now);
      if (fabric->converged("attacker", now)) return r;
    }
    return -1;
  }
};

GossipPolicy gossip_policy(std::size_t fanout, double loss) {
  GossipPolicy policy;
  policy.enabled = true;
  policy.fanout = fanout;
  policy.round_seconds = 0.5;
  policy.seed = 42;
  policy.message_loss_rate = loss;
  return policy;
}

TEST(GossipFabric, LosslessPushConvergesQuickly) {
  Fleet fleet(8, gossip_policy(/*fanout=*/2, /*loss=*/0));
  const int rounds = fleet.rounds_to_converge(64);
  ASSERT_GT(rounds, 0);
  // Push gossip with fanout 2 over 8 nodes: expected O(log n) rounds; a
  // generous deterministic bound catches a broken schedule, not variance.
  EXPECT_LE(rounds, 8);
  EXPECT_EQ(fleet.fabric->stats().messages_dropped, 0u);
  EXPECT_GT(fleet.fabric->stats().signatures_accepted, 0u);
}

TEST(GossipFabric, ConvergesDespiteThirtyPercentMessageLoss) {
  Fleet fleet(8, gossip_policy(/*fanout=*/2, /*loss=*/0.3));
  const int rounds = fleet.rounds_to_converge(200);
  ASSERT_GT(rounds, 0) << "loss must delay convergence, never prevent it";
  EXPECT_GT(fleet.fabric->stats().messages_dropped, 0u);

  // Loss costs rounds relative to the lossless schedule.
  Fleet lossless(8, gossip_policy(2, 0));
  EXPECT_GE(rounds, lossless.rounds_to_converge(200));
}

TEST(GossipFabric, RestartedNodeIsRepopulatedByGossip) {
  Fleet fleet(8, gossip_policy(/*fanout=*/2, /*loss=*/0));
  const int rounds = fleet.rounds_to_converge(64);
  ASSERT_GT(rounds, 0);

  // Churn: node 5 restarts and forgets everything it knew.
  fleet.fabric->restart_node(5);
  double now = static_cast<double>(rounds) * 0.5;
  EXPECT_FALSE(fleet.fabric->converged("attacker", now));
  EXPECT_EQ(fleet.fabric->coverage("attacker", now), 7u);

  // Anti-entropy: later rounds re-deliver the signature; the fabric
  // converges again instead of wedging on the lost state.
  bool reconverged = false;
  for (int r = 1; r <= 64 && !reconverged; ++r) {
    now += 0.5;
    fleet.fabric->advance(now);
    reconverged = fleet.fabric->converged("attacker", now);
  }
  EXPECT_TRUE(reconverged);
}

TEST(GossipFabric, ScheduleIsDeterministic) {
  Fleet a(6, gossip_policy(/*fanout=*/1, /*loss=*/0.25));
  Fleet b(6, gossip_policy(/*fanout=*/1, /*loss=*/0.25));
  EXPECT_EQ(a.rounds_to_converge(200), b.rounds_to_converge(200));
  EXPECT_EQ(a.fabric->stats().messages_sent, b.fabric->stats().messages_sent);
  EXPECT_EQ(a.fabric->stats().messages_dropped,
            b.fabric->stats().messages_dropped);
  EXPECT_EQ(a.fabric->stats().signatures_accepted,
            b.fabric->stats().signatures_accepted);
}

TEST(GossipFabric, ExpiredSignaturesStopPropagating) {
  Fleet fleet(4, gossip_policy(/*fanout=*/2, /*loss=*/0));
  // A short-lived signature: expires before the second round fires.
  fleet.owned[0]->table().upsert(make_signature("attacker", 0, 0.6), 0);
  fleet.fabric->advance(0.5);  // round 1: may spread to some peers
  fleet.fabric->advance(5.0);  // rounds 2..: everything expired
  EXPECT_EQ(fleet.fabric->coverage("attacker", 5.0), 0u);
  std::uint64_t expired = 0;
  for (const auto& node : fleet.owned) {
    expired += node->table().expired_total;
  }
  EXPECT_GT(expired, 0u);
}

}  // namespace
}  // namespace rangeamp::cdn
