#include "cdn/cache.h"

#include <gtest/gtest.h>

namespace rangeamp::cdn {
namespace {

TEST(Cache, KeyIncludesHostAndFullTarget) {
  EXPECT_EQ(Cache::key("h.example", "/a?q=1"), "h.example|/a?q=1");
  // The cache-busting trick of section II-A: a different query is a
  // different key.
  EXPECT_NE(Cache::key("h", "/a?q=1"), Cache::key("h", "/a?q=2"));
  EXPECT_NE(Cache::key("h1", "/a"), Cache::key("h2", "/a"));
}

TEST(Cache, MissThenHit) {
  Cache cache;
  const auto key = Cache::key("h", "/a");
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  CachedEntity entity;
  entity.entity = http::Body::synthetic(1, 0, 100);
  entity.content_type = "image/png";
  cache.put(key, entity);

  const CachedEntity* hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(hit->content_type, "image/png");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, PutOverwrites) {
  Cache cache;
  CachedEntity a, b;
  a.entity = http::Body::synthetic(1, 0, 10);
  b.entity = http::Body::synthetic(1, 0, 20);
  cache.put("k", a);
  cache.put("k", b);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("k")->size(), 20u);
}

TEST(Cache, ClearEmpties) {
  Cache cache;
  CachedEntity e;
  e.entity = http::Body::literal("x");
  cache.put("k", e);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
}

}  // namespace
}  // namespace rangeamp::cdn
