#include "cdn/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rangeamp::cdn {
namespace {

CachedEntity entity_of(std::uint64_t size, std::string content_type = "") {
  CachedEntity e;
  e.entity = http::Body::synthetic(1, 0, size);
  e.content_type = std::move(content_type);
  return e;
}

/// Sums charge_of over every live entry -- must equal bytes() at all times
/// (the byte-accounting invariant the budget enforcement rests on).
std::uint64_t accounted_bytes(const Cache& cache) {
  std::uint64_t sum = 0;
  cache.for_each([&](const std::string& key, const CachedEntity& entity) {
    sum += Cache::charge_of(key, entity);
  });
  return sum;
}

bool contains(const Cache& cache, const std::string& key) {
  bool found = false;
  cache.for_each([&](const std::string& k, const CachedEntity&) {
    if (k == key) found = true;
  });
  return found;
}

CacheTraits budgeted(std::uint64_t max_bytes,
                     CacheEvictionPolicy policy = CacheEvictionPolicy::kS3Fifo) {
  CacheTraits traits;
  traits.max_bytes = max_bytes;
  traits.policy = policy;
  return traits;
}

TEST(Cache, KeyIncludesHostAndFullTarget) {
  EXPECT_EQ(Cache::key("h.example", "/a?q=1"), "h.example|/a?q=1");
  // The cache-busting trick of section II-A: a different query is a
  // different key.
  EXPECT_NE(Cache::key("h", "/a?q=1"), Cache::key("h", "/a?q=2"));
  EXPECT_NE(Cache::key("h1", "/a"), Cache::key("h2", "/a"));
}

TEST(Cache, MissThenHit) {
  Cache cache;
  const auto key = Cache::key("h", "/a");
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  CachedEntity entity;
  entity.entity = http::Body::synthetic(1, 0, 100);
  entity.content_type = "image/png";
  cache.put(key, entity);

  const CachedEntity* hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(hit->content_type, "image/png");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, PutOverwrites) {
  Cache cache;
  CachedEntity a, b;
  a.entity = http::Body::synthetic(1, 0, 10);
  b.entity = http::Body::synthetic(1, 0, 20);
  cache.put("k", a);
  cache.put("k", b);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("k")->size(), 20u);
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

TEST(Cache, ClearEmpties) {
  Cache cache;
  CachedEntity e;
  e.entity = http::Body::literal("x");
  cache.put("k", e);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
}

// Satellite regression: clear() used to leave the hit/miss counters at
// their pre-clear values, so a cleared cache reported a phantom history.
TEST(Cache, ClearResetsCounters) {
  Cache cache(budgeted(1000, CacheEvictionPolicy::kFifoNaive));
  EXPECT_EQ(cache.find("absent"), nullptr);  // 1 miss
  cache.put("k", entity_of(100));
  EXPECT_NE(cache.find("k"), nullptr);  // 1 hit
  for (int i = 0; i < 20; ++i) {        // force some evictions
    cache.put("j" + std::to_string(i), entity_of(100));
  }
  EXPECT_GT(cache.evictions(), 0u);

  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.admission_rejects(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(Cache, TouchAbsentKey) {
  Cache cache;
  EXPECT_EQ(cache.touch("nope", 100.0, 0.0), TouchResult::kAbsent);
}

TEST(Cache, TouchRefreshesWithFutureHorizon) {
  Cache cache;
  CachedEntity e = entity_of(10);
  e.expires_at = 50.0;
  cache.put("k", e);
  // Fresh entry, later horizon: plain refresh.
  EXPECT_EQ(cache.touch("k", 200.0, 10.0), TouchResult::kRefreshed);
  EXPECT_TRUE(cache.find("k")->fresh_at(100.0));
  // Stale entry, but the revalidation yields a future horizon: refreshed,
  // not purged (the stale->revalidate->fresh path).
  EXPECT_EQ(cache.touch("k", 400.0, 300.0), TouchResult::kRefreshed);
  EXPECT_TRUE(cache.find("k")->fresh_at(399.0));
}

// Satellite regression: the old touch() set expires_at unconditionally, so
// a stale entry "revalidated" to a horizon already in the past was silently
// resurrected as a permanently stale resident.  Now it is purged.
TEST(Cache, TouchPurgesStaleEntryWithoutFutureHorizon) {
  Cache cache;
  CachedEntity e = entity_of(10);
  e.expires_at = 50.0;
  cache.put("k", e);
  EXPECT_EQ(cache.touch("k", 60.0, 60.0), TouchResult::kPurgedStale);
  EXPECT_EQ(cache.find("k"), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(Cache, TouchWithoutNowKeepsLegacyRefreshSemantics) {
  Cache cache;
  CachedEntity e = entity_of(10);
  e.expires_at = 50.0;
  cache.put("k", e);
  // No `now` supplied: every touch is a pure refresh, as before.
  EXPECT_EQ(cache.touch("k", 10.0), TouchResult::kRefreshed);
  ASSERT_NE(cache.find("k"), nullptr);
}

TEST(Cache, UnboundedNeverEvicts) {
  Cache cache;  // default traits: max_bytes = 0
  for (int i = 0; i < 500; ++i) {
    cache.put("k" + std::to_string(i), entity_of(1024));
  }
  EXPECT_EQ(cache.size(), 500u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.admission_rejects(), 0u);
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

TEST(Cache, FifoEvictsOldestAndRespectsBudget) {
  const std::uint64_t budget = 2000;
  Cache cache(budgeted(budget, CacheEvictionPolicy::kFifoNaive));
  for (int i = 0; i < 30; ++i) {
    cache.put("k" + std::to_string(i), entity_of(100));
    EXPECT_LE(cache.bytes(), budget);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_FALSE(contains(cache, "k0"));   // oldest went first
  EXPECT_TRUE(contains(cache, "k29"));   // newest survives
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

// The watermark contract: crossing the high watermark drains the shard to
// the low watermark, so a burst of inserts does not evict one-at-a-time at
// the budget edge.
TEST(Cache, WatermarksDrainBelowBudgetEdge) {
  CacheTraits traits = budgeted(10000, CacheEvictionPolicy::kFifoNaive);
  traits.low_watermark = 0.5;
  traits.high_watermark = 0.9;
  Cache cache(traits);
  bool drained = false;
  std::uint64_t last_evictions = 0;
  for (int i = 0; i < 60; ++i) {
    cache.put("k" + std::to_string(i), entity_of(100));
    EXPECT_LE(cache.bytes(), traits.max_bytes);
    if (cache.evictions() > last_evictions) {
      // An insert that crossed the high watermark drained the shard all the
      // way down to the low watermark -- not just by one entry.
      EXPECT_LE(cache.bytes(), 5000u);
      EXPECT_GE(cache.evictions() - last_evictions, 2u);
      last_evictions = cache.evictions();
      drained = true;
    }
  }
  EXPECT_TRUE(drained);
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

TEST(Cache, AdmissionRejectsOversizedEntry) {
  Cache cache(budgeted(1000));
  cache.put("small", entity_of(100));
  cache.put("huge", entity_of(5000));  // charge > whole budget
  EXPECT_EQ(cache.admission_rejects(), 1u);
  EXPECT_FALSE(contains(cache, "huge"));
  EXPECT_TRUE(contains(cache, "small"));
  EXPECT_LE(cache.bytes(), 1000u);
}

// The tentpole property: a one-hit-wonder flood (the attacker's random-query
// spray) churns through the S3-FIFO small queue and never displaces the
// re-accessed working set; naive FIFO loses the working set to the same
// flood.
TEST(Cache, S3FifoResistsOneHitWonderFlood) {
  const std::uint64_t budget = 10000;
  Cache s3(budgeted(budget, CacheEvictionPolicy::kS3Fifo));
  Cache fifo(budgeted(budget, CacheEvictionPolicy::kFifoNaive));

  const auto warm = [](Cache& cache) {
    for (int i = 0; i < 5; ++i) {
      const std::string key = "hot" + std::to_string(i);
      cache.put(key, entity_of(100));
      cache.find(key);  // second access: freq > 0, survives probation
      cache.find(key);
    }
  };
  const auto flood = [](Cache& cache) {
    for (int i = 0; i < 200; ++i) {
      cache.put("junk" + std::to_string(i), entity_of(100));
    }
  };
  warm(s3);
  flood(s3);
  warm(fifo);
  flood(fifo);

  for (int i = 0; i < 5; ++i) {
    const std::string key = "hot" + std::to_string(i);
    EXPECT_TRUE(contains(s3, key)) << key << " lost under S3-FIFO";
    EXPECT_FALSE(contains(fifo, key)) << key << " survived naive FIFO";
  }
  EXPECT_LE(s3.bytes(), budget);
  EXPECT_LE(fifo.bytes(), budget);
  EXPECT_EQ(accounted_bytes(s3), s3.bytes());
}

// Ghost readmission: a key evicted once and inserted again goes straight to
// the main queue, so it survives small-queue churn that kills a cold
// first-sight key.
TEST(Cache, GhostReadmitsReturningKeyToMain) {
  Cache cache(budgeted(10000, CacheEvictionPolicy::kS3Fifo));
  cache.put("returning", entity_of(100));
  for (int i = 0; i < 200; ++i) {  // flood evicts it (freq 0, small queue)
    cache.put("junk" + std::to_string(i), entity_of(100));
  }
  ASSERT_FALSE(contains(cache, "returning"));

  cache.put("returning", entity_of(100));   // ghost hit -> main
  cache.put("first-sight", entity_of(100));  // control -> small
  for (int i = 0; i < 60; ++i) {
    cache.put("junk2-" + std::to_string(i), entity_of(100));
  }
  EXPECT_TRUE(contains(cache, "returning"));
  EXPECT_FALSE(contains(cache, "first-sight"));
}

// Satellite: evicting (or erasing) a `#vary` marker must not strand the
// unreachable `#variant=` entries -- they are purged with it and the byte
// accounting stays exact.
TEST(Cache, ErasingVaryMarkerPurgesVariants) {
  Cache cache;
  CachedEntity marker;
  marker.vary = "Accept-Encoding";
  cache.put("h|/a#vary", marker);
  cache.put("h|/a#variant=gzip\x1f", entity_of(500));
  cache.put("h|/a#variant=br\x1f", entity_of(400));
  cache.put("h|/b", entity_of(300));  // unrelated survivor
  ASSERT_EQ(cache.size(), 4u);

  EXPECT_TRUE(cache.erase("h|/a#vary"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(contains(cache, "h|/a#variant=gzip\x1f"));
  EXPECT_FALSE(contains(cache, "h|/a#variant=br\x1f"));
  EXPECT_TRUE(contains(cache, "h|/b"));
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

TEST(Cache, EvictingVaryMarkerPurgesVariantsAndCountsThem) {
  // FIFO order makes the marker the first eviction; its variants must go
  // with it and be counted (they occupy budget like everything else).
  Cache cache(budgeted(3000, CacheEvictionPolicy::kFifoNaive));
  CachedEntity marker;
  marker.vary = "Accept-Encoding";
  cache.put("h|/a#vary", marker);
  cache.put("h|/a#variant=gzip\x1f", entity_of(200));
  cache.put("h|/a#variant=br\x1f", entity_of(200));
  const std::uint64_t occupied = cache.bytes();
  ASSERT_GT(occupied, 0u);

  // Push past the high watermark so the marker (queue head) is evicted.
  for (int i = 0; i < 20; ++i) {
    cache.put("fill" + std::to_string(i), entity_of(200));
  }
  EXPECT_FALSE(contains(cache, "h|/a#vary"));
  EXPECT_FALSE(contains(cache, "h|/a#variant=gzip\x1f"));
  EXPECT_FALSE(contains(cache, "h|/a#variant=br\x1f"));
  EXPECT_GE(cache.evictions(), 3u);  // marker + cascaded variants counted
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

// Satellite: `#neg` negative-cache entries are charged and evictable like
// any other entry.
TEST(Cache, NegativeEntriesAreChargedAndEvictable) {
  Cache cache(budgeted(2000, CacheEvictionPolicy::kFifoNaive));
  CachedEntity negative;
  negative.content_type = "#negative";
  negative.expires_at = 30.0;
  cache.put("h|/x#neg", negative);
  EXPECT_GT(cache.bytes(), 0u);  // zero-byte body still carries overhead

  for (int i = 0; i < 30; ++i) {
    cache.put("fill" + std::to_string(i), entity_of(100));
  }
  EXPECT_FALSE(contains(cache, "h|/x#neg"));
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
}

// All entries of one URL -- entity, vary marker, variants, negative entry,
// slices -- shard together (hash of the base key), so marker cascades never
// cross a shard boundary.
TEST(Cache, SuffixedKeysShardWithTheirBaseKey) {
  CacheTraits traits;
  traits.shards = 8;
  Cache cache(traits);
  EXPECT_EQ(cache.shard_count(), 8u);
  for (const std::string base : {"h|/a", "h|/b?q=1", "cdn.example|/obj/17"}) {
    const std::size_t home = cache.shard_of(base);
    EXPECT_EQ(cache.shard_of(base + "#neg"), home);
    EXPECT_EQ(cache.shard_of(base + "#vary"), home);
    EXPECT_EQ(cache.shard_of(base + "#variant=gzip\x1f"), home);
    EXPECT_EQ(cache.shard_of(base + "#slice=3"), home);
  }
}

TEST(Cache, ShardedAggregatesSumAcrossShards) {
  CacheTraits traits = budgeted(64 * 1024);
  traits.shards = 4;
  Cache cache(traits);
  for (int i = 0; i < 100; ++i) {
    cache.put("h|/obj/" + std::to_string(i), entity_of(128));
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(cache.find("h|/obj/" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.hits(), 100u);
}

// Two threads hammering DISJOINT shards of one cache: the per-shard
// ownership rule of docs/parallel-model.md.  Runs under TSan in CI (the
// cdn_tests suite is part of the sanitizer matrix), which is what actually
// checks the locking.
TEST(Cache, ConcurrentDisjointShardStress) {
  CacheTraits traits = budgeted(32 * 1024);
  traits.shards = 4;
  Cache cache(traits);

  // Partition keys by home shard so each worker owns what it touches.
  std::vector<std::vector<std::string>> keys_by_shard(2);
  for (int i = 0; keys_by_shard[0].size() < 64 || keys_by_shard[1].size() < 64;
       ++i) {
    std::string key = "h|/k" + std::to_string(i);
    const std::size_t shard = cache.shard_of(key);
    if (shard < 2 && keys_by_shard[shard].size() < 64) {
      keys_by_shard[shard].push_back(std::move(key));
    }
  }

  const auto worker = [&cache](const std::vector<std::string>& keys) {
    for (int round = 0; round < 200; ++round) {
      for (const std::string& key : keys) {
        cache.put(key, entity_of(100 + round % 64));
        cache.find(key);
        if (round % 7 == 0) cache.touch(key, 1000.0, 0.0);
        if (round % 13 == 0) cache.erase(key);
      }
    }
  };
  std::thread a(worker, keys_by_shard[0]);
  std::thread b(worker, keys_by_shard[1]);
  a.join();
  b.join();

  EXPECT_EQ(accounted_bytes(cache), cache.bytes());
  EXPECT_LE(cache.bytes(), traits.max_bytes);
}

}  // namespace
}  // namespace rangeamp::cdn
