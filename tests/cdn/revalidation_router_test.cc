// Cache TTL / conditional revalidation and host-based routing.
#include <gtest/gtest.h>

#include "cdn/logic.h"
#include "core/testbed.h"
#include "http/chunked.h"
#include "net/router.h"

namespace rangeamp::cdn {
namespace {

using http::Request;
using http::Response;

// ---------------------------------------------------------------------------
// Origin conditional GET
// ---------------------------------------------------------------------------

TEST(OriginConditional, IfNoneMatchHits304) {
  origin::OriginServer origin;
  origin.resources().add_synthetic("/x.bin", 4096);
  const auto etag = origin.resources().find("/x.bin")->etag;

  Request req = http::make_get("h.example", "/x.bin");
  req.headers.add("If-None-Match", etag);
  const Response resp = origin.handle(req);
  EXPECT_EQ(resp.status, 304);
  EXPECT_EQ(resp.body.size(), 0u);
  EXPECT_EQ(resp.headers.get("ETag"), etag);

  Request star = http::make_get("h.example", "/x.bin");
  star.headers.add("If-None-Match", "*");
  EXPECT_EQ(origin.handle(star).status, 304);

  Request stale = http::make_get("h.example", "/x.bin");
  stale.headers.add("If-None-Match", "\"other\"");
  EXPECT_EQ(origin.handle(stale).status, 200);
}

// ---------------------------------------------------------------------------
// Node revalidation
// ---------------------------------------------------------------------------

struct RevalidationBed {
  explicit RevalidationBed(double ttl) {
    VendorProfile profile;
    profile.traits.name = "TtlCdn";
    profile.traits.cache_ttl_seconds = ttl;
    profile.logic = std::make_unique<DeletionLogic>();
    bed = std::make_unique<core::SingleCdnTestbed>(std::move(profile));
    bed->origin().resources().add_synthetic("/t.bin", 8192);
    bed->cdn().set_clock([this] { return now; });
  }

  Response get() {
    return bed->send(http::make_get("h.example", "/t.bin"));
  }

  double now = 0;
  std::unique_ptr<core::SingleCdnTestbed> bed;
};

TEST(Revalidation, FreshEntryServedWithoutOriginContact) {
  RevalidationBed rb(60);
  rb.get();
  const auto after_fill = rb.bed->origin_traffic().response_bytes();
  rb.now = 30;  // still fresh
  rb.get();
  EXPECT_EQ(rb.bed->origin_traffic().response_bytes(), after_fill);
}

TEST(Revalidation, StaleEntryRevalidatesWith304AndServesFromCache) {
  RevalidationBed rb(60);
  const Response first = rb.get();
  const auto after_fill = rb.bed->origin_traffic().response_bytes();
  rb.now = 61;  // expired
  const Response second = rb.get();
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, first.body);
  // The origin saw a conditional GET and answered 304: tiny traffic delta.
  const auto revalidation_cost =
      rb.bed->origin_traffic().response_bytes() - after_fill;
  EXPECT_GT(revalidation_cost, 0u);
  EXPECT_LT(revalidation_cost, 400u);
  ASSERT_EQ(rb.bed->origin().request_log().size(), 2u);
  EXPECT_TRUE(rb.bed->origin().request_log()[1].headers.has("If-None-Match"));
  // And the entry is fresh again.
  rb.now = 100;
  rb.get();
  EXPECT_EQ(rb.bed->origin().request_log().size(), 2u);
}

TEST(Revalidation, ChangedEntityIsRefetched) {
  RevalidationBed rb(60);
  rb.get();
  // The origin's content changes (same path, new bytes & etag).
  rb.bed->origin().resources().add_synthetic("/t.bin", 9999);
  rb.now = 61;
  const Response refreshed = rb.get();
  EXPECT_EQ(refreshed.status, 200);
  EXPECT_EQ(refreshed.body.size(), 9999u);
}

TEST(Revalidation, NoClockMeansNoExpiry) {
  VendorProfile profile;
  profile.traits.name = "NoClock";
  profile.traits.cache_ttl_seconds = 1;  // would expire instantly...
  profile.logic = std::make_unique<DeletionLogic>();
  core::SingleCdnTestbed bed(std::move(profile));  // ...but no clock is set
  bed.origin().resources().add_synthetic("/t.bin", 1024);
  bed.send(http::make_get("h.example", "/t.bin"));
  bed.send(http::make_get("h.example", "/t.bin"));
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
}

// ---------------------------------------------------------------------------
// If-Modified-Since (origin) and Vary (node cache variants)
// ---------------------------------------------------------------------------

TEST(OriginConditional, IfModifiedSinceComparesInstants) {
  origin::OriginServer origin;
  origin.resources().add_synthetic("/x.bin", 1024);
  // The resource's Last-Modified is Mon, 06 Jul 2020 11:22:33 GMT.
  Request later = http::make_get("h.example", "/x.bin");
  later.headers.add("If-Modified-Since", "Tue, 07 Jul 2020 03:14:15 GMT");
  EXPECT_EQ(origin.handle(later).status, 304);

  Request earlier = http::make_get("h.example", "/x.bin");
  earlier.headers.add("If-Modified-Since", "Wed, 01 Jul 2020 00:00:00 GMT");
  EXPECT_EQ(origin.handle(earlier).status, 200);

  // Malformed dates are ignored (full response).
  Request garbage = http::make_get("h.example", "/x.bin");
  garbage.headers.add("If-Modified-Since", "yesterday-ish");
  EXPECT_EQ(origin.handle(garbage).status, 200);
}

TEST(VaryCache, VariantsAreCachedSeparately) {
  origin::OriginConfig config;
  config.extra_headers = {{"Vary", "Accept-Encoding"}};
  core::SingleCdnTestbed bed(make_profile(Vendor::kFastly), config);
  bed.origin().resources().add_synthetic("/v.bin", 2048);

  const auto request_with = [&](std::string encoding) {
    Request req = http::make_get("h.example", "/v.bin");
    if (!encoding.empty()) req.headers.add("Accept-Encoding", std::move(encoding));
    return req;
  };

  bed.send(request_with("gzip"));
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
  // A different Accept-Encoding is a different variant -> second miss.
  bed.send(request_with("br"));
  EXPECT_EQ(bed.origin().request_log().size(), 2u);
  // Repeats of either variant hit the cache.
  bed.send(request_with("gzip"));
  bed.send(request_with("br"));
  EXPECT_EQ(bed.origin().request_log().size(), 2u);
  // Absent header is its own variant.
  bed.send(request_with(""));
  EXPECT_EQ(bed.origin().request_log().size(), 3u);
}

TEST(VaryCache, NonVaryingResourcesShareOneEntry) {
  core::SingleCdnTestbed bed(make_profile(Vendor::kFastly));
  bed.origin().resources().add_synthetic("/plain.bin", 2048);
  Request a = http::make_get("h.example", "/plain.bin");
  a.headers.add("Accept-Encoding", "gzip");
  Request b = http::make_get("h.example", "/plain.bin");
  b.headers.add("Accept-Encoding", "br");
  bed.send(a);
  bed.send(b);
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
}

// ---------------------------------------------------------------------------
// Host routing
// ---------------------------------------------------------------------------

TEST(HostRouter, RoutesByHostWithDefaultAndMiss) {
  origin::OriginServer site_a, site_b;
  site_a.resources().add_literal("/", "site A", "text/plain");
  site_b.resources().add_literal("/", "site B", "text/plain");

  net::HostRouter router;
  router.add_route("a.example", site_a);
  router.add_route("b.example", site_b);

  EXPECT_EQ(router.handle(http::make_get("a.example", "/")).body.materialize(),
            "site A");
  EXPECT_EQ(router.handle(http::make_get("b.example", "/")).body.materialize(),
            "site B");
  EXPECT_EQ(router.handle(http::make_get("c.example", "/")).status, 404);

  router.set_default(site_a);
  EXPECT_EQ(router.handle(http::make_get("c.example", "/")).body.materialize(),
            "site A");
  EXPECT_EQ(router.route_count(), 2u);
}

TEST(HostRouter, MultiTenantCdnKeepsCachesIsolated) {
  // One CDN node, two customer origins: the cache key includes the Host, so
  // tenants never see each other's bytes.
  origin::OriginServer site_a, site_b;
  site_a.resources().add_literal("/page", "AAAA", "text/plain");
  site_b.resources().add_literal("/page", "BBBB", "text/plain");
  net::HostRouter router;
  router.add_route("a.example", site_a);
  router.add_route("b.example", site_b);

  CdnNode node(make_profile(Vendor::kFastly), router);
  EXPECT_EQ(node.handle(http::make_get("a.example", "/page")).body.materialize(),
            "AAAA");
  EXPECT_EQ(node.handle(http::make_get("b.example", "/page")).body.materialize(),
            "BBBB");
  // Both now cached; repeat hits stay correct per tenant.
  EXPECT_EQ(node.handle(http::make_get("a.example", "/page")).body.materialize(),
            "AAAA");
  EXPECT_EQ(site_a.request_log().size(), 1u);
  EXPECT_EQ(site_b.request_log().size(), 1u);
}

// ---------------------------------------------------------------------------
// Chunked origin through a CDN
// ---------------------------------------------------------------------------

TEST(ChunkedOrigin, CdnDechunksAndServesRanges) {
  origin::OriginConfig config;
  config.chunked_full_responses = true;
  core::SingleCdnTestbed bed(make_profile(Vendor::kAkamai), config);
  bed.origin().resources().add_synthetic("/c.bin", 50000);
  const std::string entity =
      bed.origin().resources().find("/c.bin")->entity.materialize();

  // Deletion policy: the CDN pulls the chunked 200, de-frames it, caches the
  // entity and serves the requested range.
  http::Request request = http::make_get("h.example", "/c.bin");
  request.headers.add("Range", "bytes=100-199");
  const Response resp = bed.send(request);
  ASSERT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.materialize(), entity.substr(100, 100));
  // The origin-side traffic includes the chunk framing overhead.
  EXPECT_GT(bed.origin_traffic().response_bytes(),
            50000u + http::chunked_size(50000) - 50000u);
}

TEST(ChunkedOrigin, PlainGetRoundTrips) {
  origin::OriginConfig config;
  config.chunked_full_responses = true;
  core::SingleCdnTestbed bed(make_profile(Vendor::kCloudflare), config);
  bed.origin().resources().add_synthetic("/c.bin", 10000);
  const Response resp = bed.send(http::make_get("h.example", "/c.bin"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 10000u);  // client gets the de-chunked entity
}

}  // namespace
}  // namespace rangeamp::cdn
