#include "cdn/node.h"

#include <gtest/gtest.h>

#include "cdn/gossip.h"
#include "cdn/logic.h"
#include "core/testbed.h"
#include "http/multipart.h"
#include "http/serialize.h"
#include "obs/metrics.h"

namespace rangeamp::cdn {
namespace {

using http::Body;
using http::Request;
using http::Response;

// A minimal neutral vendor for exercising the node mechanics.
VendorProfile generic_profile(std::unique_ptr<VendorLogic> logic,
                              MultiRangeReplyPolicy reply =
                                  MultiRangeReplyPolicy::kHonorOverlapping) {
  VendorProfile profile;
  profile.traits.name = "TestCDN";
  profile.traits.response_identity_headers = {{"Server", "TestCDN"}};
  profile.traits.multipart_boundary = "test_boundary_123";
  profile.traits.multi_reply = reply;
  profile.logic = std::move(logic);
  return profile;
}

Request ranged(std::string target, std::string range) {
  Request req = http::make_get("site.example", std::move(target));
  if (!range.empty()) req.headers.add("Range", std::move(range));
  return req;
}

class NodeTest : public ::testing::Test {
 protected:
  core::SingleCdnTestbed make_bed(std::unique_ptr<VendorLogic> logic,
                                  MultiRangeReplyPolicy reply =
                                      MultiRangeReplyPolicy::kHonorOverlapping) {
    core::SingleCdnTestbed bed(generic_profile(std::move(logic), reply));
    bed.origin().resources().add_synthetic("/r.bin", 1000);
    return bed;
  }
};

// ---------------------------------------------------------------------------
// Deletion logic
// ---------------------------------------------------------------------------

TEST_F(NodeTest, DeletionFetchesFullEntityForTinyRange) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1u);
  // Origin saw no Range header and shipped the whole entity.
  ASSERT_EQ(bed.origin().request_log().size(), 1u);
  EXPECT_FALSE(bed.origin().request_log()[0].headers.has("Range"));
  EXPECT_GT(bed.origin_traffic().response_bytes(), 1000u);
}

TEST_F(NodeTest, DeletionCachesSoSecondRequestStaysLocal) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  bed.send(ranged("/r.bin", "bytes=0-0"));
  const auto origin_after_first = bed.origin_traffic().response_bytes();
  const Response resp = bed.send(ranged("/r.bin", "bytes=5-9"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 5u);
  EXPECT_EQ(bed.origin_traffic().response_bytes(), origin_after_first);
  EXPECT_EQ(bed.cdn().cache().hits(), 1u);
}

TEST_F(NodeTest, RangeServedFromCacheMatchesOriginBytes) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  const Response full = bed.send(ranged("/r.bin", ""));
  const Response part = bed.send(ranged("/r.bin", "bytes=100-199"));
  EXPECT_EQ(part.body.materialize(), full.body.materialize().substr(100, 100));
}

// ---------------------------------------------------------------------------
// Laziness logic
// ---------------------------------------------------------------------------

TEST_F(NodeTest, LazinessForwardsRangeUnchanged) {
  auto bed = make_bed(std::make_unique<LazinessLogic>());
  const Response resp = bed.send(ranged("/r.bin", "bytes=3-7"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 5u);
  ASSERT_EQ(bed.origin().request_log().size(), 1u);
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"), "bytes=3-7");
  // Origin only shipped the 5 bytes + headers: no amplification.
  EXPECT_LT(bed.origin_traffic().response_bytes(), 600u);
}

TEST_F(NodeTest, LazinessServesRangeFrom200WhenOriginIgnoresRanges) {
  origin::OriginConfig config;
  config.supports_ranges = false;
  core::SingleCdnTestbed bed(generic_profile(std::make_unique<LazinessLogic>()),
                             config);
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-9"));
  // RFC 2616: a proxy that receives the entire entity returns just the range.
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 10u);
  // And the entity is now cached.
  EXPECT_EQ(bed.cdn().cache().size(), 1u);
}

TEST_F(NodeTest, LazinessRelayModePassesThe200Through) {
  origin::OriginConfig config;
  config.supports_ranges = false;
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<LazinessLogic>(/*serve_range_on_200=*/false)),
      config);
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-9"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Bounded expansion logic (the mitigation)
// ---------------------------------------------------------------------------

TEST_F(NodeTest, BoundedExpansionGrowsClosedRangeBySlack) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<BoundedExpansionLogic>(100)));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response resp = bed.send(ranged("/r.bin", "bytes=10-19"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 10u);
  ASSERT_EQ(bed.origin().request_log().size(), 1u);
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"), "bytes=10-119");
}

TEST_F(NodeTest, BoundedExpansionGrowsSuffix) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<BoundedExpansionLogic>(100)));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response resp = bed.send(ranged("/r.bin", "bytes=-5"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 5u);
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"), "bytes=-105");
}

TEST_F(NodeTest, BoundedExpansionCapsOriginExposure) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<BoundedExpansionLogic>(8 * 1024)));
  bed.origin().resources().add_synthetic("/big.bin", 10u << 20);
  bed.send(ranged("/big.bin", "bytes=0-0"));
  // Origin sends ~8 KB, not 10 MB.
  EXPECT_LT(bed.origin_traffic().response_bytes(), 16 * 1024u);
}

std::size_t part_count(const Response& resp) {
  const auto ct = resp.headers.get("Content-Type");
  if (!ct) return 0;
  const auto boundary = http::boundary_from_content_type(*ct);
  if (!boundary) return resp.status == 206 ? 1 : 0;
  const auto parts =
      http::parse_multipart_byteranges(resp.body.materialize(), *boundary);
  return parts ? parts->size() : 0;
}

// ---------------------------------------------------------------------------
// Slice logic (G-Core's shipped fix)
// ---------------------------------------------------------------------------

TEST_F(NodeTest, SliceLogicCapsOriginExposurePerRequest) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(1u << 20)));
  bed.origin().resources().add_synthetic("/big.bin", 25u << 20);
  const Response resp = bed.send(ranged("/big.bin?cb=1", "bytes=0-0"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1u);
  // One 1 MiB slice, not 25 MB.
  EXPECT_GT(bed.origin_traffic().response_bytes(), 1u << 20);
  EXPECT_LT(bed.origin_traffic().response_bytes(), (1u << 20) + 2048);
  // The origin saw a slice-aligned range, never a naked request.
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"),
            "bytes=0-1048575");
}

TEST_F(NodeTest, SliceCacheSurvivesQueryRotation) {
  // The attacker's cache-busting query does not defeat the slice cache: the
  // slice key is the path.
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(1u << 20)));
  bed.origin().resources().add_synthetic("/big.bin", 25u << 20);
  bed.send(ranged("/big.bin?cb=1", "bytes=0-0"));
  const auto after_first = bed.origin_traffic().response_bytes();
  bed.send(ranged("/big.bin?cb=2", "bytes=0-0"));
  bed.send(ranged("/big.bin?cb=3", "bytes=1-1"));
  EXPECT_EQ(bed.origin_traffic().response_bytes(), after_first);
}

TEST_F(NodeTest, SliceAssemblyServesCorrectBytesAcrossSliceBoundaries) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(4096)));
  bed.origin().resources().add_synthetic("/f.bin", 64 * 1024);
  const std::string entity =
      bed.origin().resources().find("/f.bin")->entity.materialize();
  // A range spanning three 4 KB slices.
  const Response resp = bed.send(ranged("/f.bin", "bytes=5000-14999"));
  ASSERT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.materialize(), entity.substr(5000, 10000));
  // Slices 1..3 fetched (plus slice 0 for size discovery).
  EXPECT_LE(bed.origin().request_log().size(), 4u);
}

TEST_F(NodeTest, SliceLogicHandlesSuffixAndFullRequests) {
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(4096)));
  bed.origin().resources().add_synthetic("/f.bin", 10000);
  const std::string entity =
      bed.origin().resources().find("/f.bin")->entity.materialize();
  const Response suffix = bed.send(ranged("/f.bin", "bytes=-100"));
  ASSERT_EQ(suffix.status, 206);
  EXPECT_EQ(suffix.body.materialize(), entity.substr(9900));
  const Response full = bed.send(ranged("/f.bin?plain=1", ""));
  ASSERT_EQ(full.status, 200);
  EXPECT_EQ(full.body.materialize(), entity);
  const Response bad = bed.send(ranged("/f.bin?x=2", "bytes=90000-90001"));
  EXPECT_EQ(bad.status, 416);
}

TEST_F(NodeTest, SliceLogicNeverFetchesGapsBetweenScatteredRanges) {
  // The bypass the auto-planner found in a naive implementation: a
  // "bytes=0-0,<far>-<far>" request must pull only the two intersecting
  // slices, never the covering span.
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(1u << 20)));
  bed.origin().resources().add_synthetic("/big.bin", 10u << 20);
  const Response resp =
      bed.send(ranged("/big.bin", "bytes=0-0,9437184-9437184"));
  ASSERT_EQ(resp.status, 206);
  EXPECT_EQ(part_count(resp), 2u);
  // Two 1 MiB slices, not ten.
  EXPECT_LT(bed.origin_traffic().response_bytes(), (2u << 20) + 4096);
  // And the payloads are the right bytes.
  const std::string entity =
      bed.origin().resources().find("/big.bin")->entity.materialize();
  const auto boundary = http::boundary_from_content_type(
      std::string{*resp.headers.get("Content-Type")});
  const auto parts =
      http::parse_multipart_byteranges(resp.body.materialize(), *boundary);
  ASSERT_TRUE(parts);
  EXPECT_EQ((*parts)[0].payload.materialize(), entity.substr(0, 1));
  EXPECT_EQ((*parts)[1].payload.materialize(), entity.substr(9437184, 1));
}

TEST_F(NodeTest, SliceLogicCoalescesOverlappingObrSets) {
  // Slice serving merges overlaps: the OBR shape collapses to one part.
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(4096),
                      MultiRangeReplyPolicy::kHonorOverlapping));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-,0-,0-,0-"));
  ASSERT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1000u);  // one part, not four
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 0-999/1000");
}

TEST_F(NodeTest, RespondAssembledSinglePartIsPlain206) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  auto& node = bed.cdn();
  const auto resp = node.respond_assembled(
      1000, "text/plain", "\"e\"", "",
      {{http::ResolvedRange{5, 9}, http::Body::literal("abcde")}});
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 5-9/1000");
  EXPECT_EQ(resp.body.materialize(), "abcde");
  // Empty part list -> 416.
  EXPECT_EQ(node.respond_assembled(1000, "text/plain", "", "", {}).status, 416);
}

TEST_F(NodeTest, SliceLogicFallsBackWhenOriginLacksRanges) {
  origin::OriginConfig config;
  config.supports_ranges = false;
  core::SingleCdnTestbed bed(
      generic_profile(std::make_unique<SliceLogic>(4096)), config);
  bed.origin().resources().add_synthetic("/f.bin", 10000);
  const Response resp = bed.send(ranged("/f.bin", "bytes=0-9"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 10u);
}

// ---------------------------------------------------------------------------
// Multi-range reply policies
// ---------------------------------------------------------------------------

TEST_F(NodeTest, HonorOverlappingProducesNParts) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kHonorOverlapping);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-,0-,0-,0-"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(part_count(resp), 4u);
  EXPECT_GE(resp.body.size(), 4000u);
}

TEST_F(NodeTest, HonorOverlappingCapFallsBackTo200) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>(),
                                          MultiRangeReplyPolicy::kHonorOverlapping);
  profile.traits.multi_reply_max_ranges = 3;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  const Response over = bed.send(ranged("/r.bin", "bytes=0-,0-,0-,0-"));
  EXPECT_EQ(over.status, 200);
  EXPECT_EQ(over.body.size(), 1000u);
  const Response at = bed.send(ranged("/r.bin?x=2", "bytes=0-,0-,0-"));
  EXPECT_EQ(at.status, 206);
  EXPECT_EQ(part_count(at), 3u);
}

TEST_F(NodeTest, CoalescePolicyMergesOverlaps) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kCoalesce);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-,0-,0-,0-"));
  EXPECT_EQ(resp.status, 206);
  // Merged to a single whole-entity range.
  EXPECT_EQ(resp.body.size(), 1000u);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 0-999/1000");
}

TEST_F(NodeTest, CoalescePolicyKeepsDisjointPartsApart) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kCoalesce);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-1,500-501"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(part_count(resp), 2u);
}

TEST_F(NodeTest, FirstRangeOnlyPolicy) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kFirstRangeOnly);
  const Response resp = bed.send(ranged("/r.bin", "bytes=5-9,100-199"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 5u);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 5-9/1000");
}

TEST_F(NodeTest, IgnoreRangePolicyReturnsFull200) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kIgnoreRange);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0,5-5"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

TEST_F(NodeTest, Reject416Policy) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kReject416);
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0,5-5"));
  EXPECT_EQ(resp.status, 416);
}

TEST_F(NodeTest, RejectOverlapping416AllowsDisjoint) {
  auto bed = make_bed(std::make_unique<DeletionLogic>(),
                      MultiRangeReplyPolicy::kRejectOverlapping416);
  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0,5-5")).status, 206);
  EXPECT_EQ(bed.send(ranged("/r.bin?x", "bytes=0-5,3-9")).status, 416);
}

// ---------------------------------------------------------------------------
// Range edge cases through the node
// ---------------------------------------------------------------------------

TEST_F(NodeTest, UnsatisfiableRangeYields416) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  const Response resp = bed.send(ranged("/r.bin", "bytes=5000-6000"));
  EXPECT_EQ(resp.status, 416);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes */1000");
}

TEST_F(NodeTest, MalformedRangeIsIgnored) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  const Response resp = bed.send(ranged("/r.bin", "bytes=9-2"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

TEST_F(NodeTest, PartiallySatisfiableMultiServesGoodRanges) {
  auto bed = make_bed(std::make_unique<DeletionLogic>());
  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0,5000-6000"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1u);
}

TEST_F(NodeTest, IngressRangeCountCapRejects) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  profile.traits.ingress_max_range_count = 2;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0,1-1")).status, 206);
  EXPECT_EQ(bed.send(ranged("/r.bin?x", "bytes=0-0,1-1,2-2")).status, 400);
  // The rejection happens before any origin contact.
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
}

TEST_F(NodeTest, IngressHeaderLimitRejectsWith431) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  profile.traits.limits.total_header_bytes = 64;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  Request req = ranged("/r.bin", "");
  req.headers.add("X-Big", std::string(100, 'x'));
  EXPECT_EQ(bed.send(req).status, 431);
  EXPECT_TRUE(bed.origin().request_log().empty());
}

TEST_F(NodeTest, ForwardHeadersReachOriginAndHopByHopStripped) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  profile.traits.forward_headers = {{"Via", "1.1 testcdn"}};
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  Request req = ranged("/r.bin", "bytes=0-0");
  req.headers.add("Connection", "keep-alive");
  req.headers.add("X-Client", "yes");
  bed.send(req);
  const auto& seen = bed.origin().request_log()[0];
  EXPECT_EQ(seen.headers.get("Via"), "1.1 testcdn");
  EXPECT_EQ(seen.headers.get("X-Client"), "yes");
  EXPECT_FALSE(seen.headers.has("Connection"));
  EXPECT_FALSE(seen.headers.has("Range"));
}

TEST_F(NodeTest, CacheDisabledAlwaysGoesUpstream) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  profile.traits.cache_enabled = false;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  bed.send(ranged("/r.bin", ""));
  bed.send(ranged("/r.bin", ""));
  EXPECT_EQ(bed.origin().request_log().size(), 2u);
  EXPECT_EQ(bed.cdn().cache().size(), 0u);
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

TEST(Calibration, PadHitsTargetExactly) {
  VendorTraits traits;
  traits.name = "CalTest";
  traits.response_identity_headers = {{"Server", "CalTest"}};
  traits.client_response_target_bytes = 700;
  traits.response_pad_bytes = calibrate_response_pad(traits);
  ASSERT_GT(traits.response_pad_bytes, 0u);

  // Rebuild the canonical response the calibration routine targets and
  // check its exact size.
  VendorProfile profile;
  profile.traits = traits;
  profile.logic = std::make_unique<DeletionLogic>();
  origin::OriginConfig origin_config;
  core::SingleCdnTestbed bed(std::move(profile), origin_config);
  bed.origin().resources().add_synthetic("/cal.bin", 26214400);
  Request req = http::make_get("h", "/cal.bin");
  req.headers.add("Range", "bytes=0-0");
  const Response resp = bed.send(req);
  // ETag/Last-Modified digits match the canonical assumption to within a
  // few bytes; exactness of the pad mechanism is what matters here.
  EXPECT_NEAR(static_cast<double>(http::serialized_size(resp)), 700.0, 4.0);
}

TEST(Calibration, ZeroTargetMeansNoPad) {
  VendorTraits traits;
  EXPECT_EQ(calibrate_response_pad(traits), 0u);
  traits.client_response_target_bytes = 10;  // below base size
  EXPECT_EQ(calibrate_response_pad(traits), 0u);
}

// ---------------------------------------------------------------------------
// Budgeted cache through the node
// ---------------------------------------------------------------------------

namespace {

core::SingleCdnTestbed budgeted_bed(std::uint64_t max_bytes,
                                    CacheEvictionPolicy policy, int objects,
                                    std::uint64_t object_bytes) {
  VendorProfile profile;
  profile.traits.name = "BudgetCdn";
  profile.traits.cache.max_bytes = max_bytes;
  profile.traits.cache.policy = policy;
  profile.logic = std::make_unique<DeletionLogic>();
  core::SingleCdnTestbed bed(std::move(profile));
  for (int i = 0; i < objects; ++i) {
    bed.origin().resources().add_synthetic("/o" + std::to_string(i) + ".bin",
                                           object_bytes);
  }
  return bed;
}

}  // namespace

TEST(BudgetedNode, CacheStaysWithinBudgetAndEvictedEntriesRefetch) {
  auto bed = budgeted_bed(64 * 1024, CacheEvictionPolicy::kFifoNaive,
                          /*objects=*/32, /*object_bytes=*/4096);
  for (int i = 0; i < 32; ++i) {
    bed.send(http::make_get("h.example", "/o" + std::to_string(i) + ".bin"));
    EXPECT_LE(bed.cdn().cache().bytes(), 64u * 1024u);
  }
  EXPECT_GT(bed.cdn().cache().evictions(), 0u);

  // An evicted object is simply a miss again: refetched from the origin,
  // byte-for-byte correct.
  const auto origin_before = bed.origin_traffic().response_bytes();
  const Response again = bed.send(http::make_get("h.example", "/o0.bin"));
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(again.body.size(), 4096u);
  EXPECT_GT(bed.origin_traffic().response_bytes(), origin_before);
}

TEST(BudgetedNode, PublishesCacheMetricsAsDeltas) {
  auto bed = budgeted_bed(64 * 1024, CacheEvictionPolicy::kFifoNaive,
                          /*objects=*/32, /*object_bytes=*/4096);
  obs::MetricsRegistry metrics;
  bed.cdn().set_metrics(&metrics);
  for (int i = 0; i < 32; ++i) {
    bed.send(http::make_get("h.example", "/o" + std::to_string(i) + ".bin"));
  }
  const auto labelled = [](std::string base) {
    return base + "{vendor=\"BudgetCdn\"}";
  };
  EXPECT_EQ(metrics.counter(labelled("cdn_cache_evictions_total")).value(),
            bed.cdn().cache().evictions());
  // The gauge tracks resident bytes exactly (delta-published per request).
  EXPECT_EQ(metrics.gauge(labelled("cdn_cache_bytes")).value(),
            static_cast<double>(bed.cdn().cache().bytes()));
  EXPECT_LE(metrics.gauge(labelled("cdn_cache_bytes")).value(), 64.0 * 1024.0);
}

TEST(BudgetedNode, AttachingMetricsMidLifeBaselinesResidentBytes) {
  auto bed = budgeted_bed(0, CacheEvictionPolicy::kS3Fifo, /*objects=*/4,
                          /*object_bytes=*/1024);
  bed.send(http::make_get("h.example", "/o0.bin"));
  bed.send(http::make_get("h.example", "/o1.bin"));
  ASSERT_GT(bed.cdn().cache().bytes(), 0u);

  // Attach late: the gauge must start from the bytes already resident, not
  // drift by publishing the full residency as a fresh delta on top of zero.
  obs::MetricsRegistry metrics;
  bed.cdn().set_metrics(&metrics);
  bed.send(http::make_get("h.example", "/o2.bin"));
  EXPECT_EQ(metrics.gauge("cdn_cache_bytes{vendor=\"BudgetCdn\"}").value(),
            static_cast<double>(bed.cdn().cache().bytes()));
}

// ---------------------------------------------------------------------------
// Detection + quarantine at the node (docs/detection-model.md)
// ---------------------------------------------------------------------------

// Deletion-logic node with inline detection on a 1 MiB target: three 1-byte
// cache-busting probes fill the detector window (min_samples = 3) and trip
// all three signals at once.
core::SingleCdnTestbed detection_bed(bool quarantine = true,
                                     bool pattern = false) {
  VendorProfile profile = generic_profile(std::make_unique<DeletionLogic>());
  profile.traits.detection.enabled = true;
  profile.traits.detection.quarantine_enabled = quarantine;
  profile.traits.detection.pattern_quarantine = pattern;
  profile.traits.detection.detector.window = 5;
  profile.traits.detection.detector.min_samples = 3;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/big.bin", 1 << 20);
  return bed;
}

Request attack_probe(int i, std::string client = "evil") {
  Request req =
      http::make_get("site.example", "/big.bin?cb=" + std::to_string(i));
  req.headers.add("Range", "bytes=0-0");
  req.headers.add(std::string(kClientKeyHeader), std::move(client));
  return req;
}

TEST(NodeQuarantine, ClientKeyMatchAnswers429WithRetryAfter) {
  auto bed = detection_bed();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(bed.send(attack_probe(i)).status, 206);
  const Response blocked = bed.send(attack_probe(3));
  EXPECT_EQ(blocked.status, 429);
  EXPECT_TRUE(blocked.headers.has("Retry-After"));
  EXPECT_EQ(bed.cdn().detection()->stats().alarms, 1u);
}

TEST(NodeQuarantine, QuarantinePrecedesCacheAndOriginWork) {
  auto bed = detection_bed();
  for (int i = 0; i < 3; ++i) bed.send(attack_probe(i));
  const std::size_t origin_requests = bed.origin().request_log().size();
  const auto origin_bytes = bed.origin_traffic().response_bytes();
  // Re-sending the first probe would be a cache HIT if it were admitted --
  // quarantine outranks the cache, so it is refused before any lookup and
  // without a single further origin byte.
  const Response blocked = bed.send(attack_probe(0));
  EXPECT_EQ(blocked.status, 429);
  EXPECT_EQ(bed.origin().request_log().size(), origin_requests);
  EXPECT_EQ(bed.origin_traffic().response_bytes(), origin_bytes);
}

TEST(NodeQuarantine, BenignClientIsStillServedWhileAttackerIsBlocked) {
  auto bed = detection_bed();
  for (int i = 0; i < 3; ++i) bed.send(attack_probe(i));
  EXPECT_EQ(bed.send(attack_probe(3)).status, 429);
  Request benign = http::make_get("site.example", "/big.bin");
  benign.headers.add(std::string(kClientKeyHeader), "good");
  EXPECT_EQ(bed.send(benign).status, 200);
}

TEST(NodeQuarantine, ShadowModeDetectsWithoutRejecting) {
  auto bed = detection_bed(/*quarantine=*/false);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(bed.send(attack_probe(i)).status, 206);
  }
  EXPECT_EQ(bed.cdn().detection()->stats().alarms, 1u);
  EXPECT_EQ(bed.cdn().detection()->table().size(), 1u);
}

TEST(NodeQuarantine, PatternQuarantineCatchesRotatedClientKey) {
  auto bed = detection_bed(/*quarantine=*/true, /*pattern=*/true);
  for (int i = 0; i < 3; ++i) bed.send(attack_probe(i, "evil"));
  // A fresh identity sending the same (base key, tiny shape) is caught by
  // the pattern arm...
  EXPECT_EQ(bed.send(attack_probe(3, "fresh-identity")).status, 429);

  // ...but with pattern matching off (the default), identity rotation
  // evades the client-key signature.
  auto keyed = detection_bed(/*quarantine=*/true, /*pattern=*/false);
  for (int i = 0; i < 3; ++i) keyed.send(attack_probe(i, "evil"));
  EXPECT_EQ(keyed.send(attack_probe(3, "fresh-identity")).status, 206);
}

}  // namespace
}  // namespace rangeamp::cdn
