#include "cdn/limits.h"

#include <gtest/gtest.h>

#include "core/obr.h"

namespace rangeamp::cdn {
namespace {

http::Request request_with_range(std::string host, std::string target,
                                 std::string range) {
  http::Request req = http::make_get(std::move(host), std::move(target));
  if (!range.empty()) req.headers.add("Range", std::move(range));
  return req;
}

TEST(Limits, NoLimitsAcceptEverything) {
  RequestHeaderLimits limits;
  const auto req = request_with_range("h", "/p", std::string(100000, 'x'));
  EXPECT_FALSE(check_request_limits(limits, req));
}

TEST(Limits, TotalHeaderBytesBoundary) {
  RequestHeaderLimits limits;
  limits.total_header_bytes = 100;
  http::Request req = http::make_get("h", "/p");  // "Host: h\r\n" = 9
  req.headers.add("A", std::string(100 - 9 - 6, 'v'));  // "A: v..\r\n" = len+5+...
  // header block = 9 + (1+2+85+2)=90 -> 99 <= 100 OK
  EXPECT_FALSE(check_request_limits(limits, req));
  req.headers.add("B", "xx");  // +7 -> over
  EXPECT_TRUE(check_request_limits(limits, req));
}

TEST(Limits, SingleHeaderLineBoundary) {
  RequestHeaderLimits limits;
  limits.single_header_line_bytes = 16;
  // "Range: bytes=0-0" line size is exactly 16.
  EXPECT_FALSE(
      check_request_limits(limits, request_with_range("h", "/p", "bytes=0-0")));
  // One more byte trips it.
  EXPECT_TRUE(
      check_request_limits(limits, request_with_range("h", "/p", "bytes=0-10")));
}

TEST(Limits, CloudflareFormulaBoundary) {
  RequestHeaderLimits limits;
  limits.cloudflare_range_budget = 32411;
  // RL = "GET /p HTTP/1.1" = 15, HHL = "Host: h" = 7 -> RL + 2*HHL = 29.
  // RHL budget = 32411 - 29 = 32382; RHL = 7 + len(value).
  const std::size_t max_value = 32382 - 7;
  EXPECT_FALSE(check_request_limits(
      limits, request_with_range("h", "/p", std::string(max_value, 'r'))));
  EXPECT_TRUE(check_request_limits(
      limits, request_with_range("h", "/p", std::string(max_value + 1, 'r'))));
}

TEST(Limits, CloudflareFormulaIgnoresRangelessRequests) {
  RequestHeaderLimits limits;
  limits.cloudflare_range_budget = 10;  // absurdly small
  EXPECT_FALSE(check_request_limits(limits, request_with_range("h", "/p", "")));
}

TEST(Limits, PaperMaxNValues) {
  // The section V-C arithmetic: with the OBR harness host/path, the largest
  // n each FCDN's own ingress accepts matches Table V.
  const std::string host{core::kObrHost};
  const std::string path{core::kObrPath};

  // CDN77: single header line <= 16 KB with "bytes=-1024,0-,...".
  {
    RequestHeaderLimits limits;
    limits.single_header_line_bytes = 16 * 1024;
    const auto ok = request_with_range(
        host, path, core::obr_range_case(Vendor::kCdn77, 5455).to_string());
    const auto over = request_with_range(
        host, path, core::obr_range_case(Vendor::kCdn77, 5456).to_string());
    EXPECT_FALSE(check_request_limits(limits, ok));
    EXPECT_TRUE(check_request_limits(limits, over));
  }
  // CDNsun: 5456 with "bytes=1-,0-,...".
  {
    RequestHeaderLimits limits;
    limits.single_header_line_bytes = 16 * 1024;
    const auto ok = request_with_range(
        host, path, core::obr_range_case(Vendor::kCdnsun, 5456).to_string());
    const auto over = request_with_range(
        host, path, core::obr_range_case(Vendor::kCdnsun, 5457).to_string());
    EXPECT_FALSE(check_request_limits(limits, ok));
    EXPECT_TRUE(check_request_limits(limits, over));
  }
  // Cloudflare: RL + 2*HHL + RHL <= 32411 -> n = 10750.
  {
    RequestHeaderLimits limits;
    limits.cloudflare_range_budget = 32411;
    const auto ok = request_with_range(
        host, path, core::obr_range_case(Vendor::kCloudflare, 10750).to_string());
    const auto over = request_with_range(
        host, path, core::obr_range_case(Vendor::kCloudflare, 10751).to_string());
    EXPECT_FALSE(check_request_limits(limits, ok));
    EXPECT_TRUE(check_request_limits(limits, over));
  }
}

TEST(Limits, PolicyNamesAreStable) {
  EXPECT_EQ(forward_policy_name(ForwardPolicy::kLaziness), "Laziness");
  EXPECT_EQ(forward_policy_name(ForwardPolicy::kDeletion), "Deletion");
  EXPECT_EQ(forward_policy_name(ForwardPolicy::kExpansion), "Expansion");
  EXPECT_EQ(reply_policy_name(MultiRangeReplyPolicy::kHonorOverlapping),
            "n-part (overlapping honored)");
}

}  // namespace
}  // namespace rangeamp::cdn
