// Rule-based profiles: spec parsing and differential equivalence with the
// hand-coded vendor logics.
#include "cdn/rules.h"

#include <gtest/gtest.h>

#include "core/scanner.h"
#include "core/testbed.h"

namespace rangeamp::cdn {
namespace {

using http::Request;
using http::Response;

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(ProfileSpec, ParsesFullDocument) {
  const char* spec = R"(# a comment
name: ExampleCDN
limit.total_header_bytes: 32768
limit.single_header_line_bytes: 16384
limit.cloudflare_range_budget: 32411
limit.max_range_count: 100
reply: honor
reply.max_ranges: 64
cache: on
response_target_bytes: 700

rule: single-closed if first<1024 -> delete
rule: single-suffix -> delete
rule: single-closed if size>=10485760 -> delete
rule: multi -> lazy
rule: default -> lazy
)";
  std::string error;
  const auto profile = parse_profile_spec(spec, &error);
  ASSERT_TRUE(profile) << error;
  EXPECT_EQ(profile->traits.name, "ExampleCDN");
  EXPECT_EQ(profile->traits.limits.total_header_bytes, 32768u);
  EXPECT_EQ(profile->traits.limits.single_header_line_bytes, 16384u);
  EXPECT_EQ(profile->traits.limits.cloudflare_range_budget, 32411u);
  EXPECT_EQ(profile->traits.ingress_max_range_count, 100u);
  EXPECT_EQ(profile->traits.multi_reply, MultiRangeReplyPolicy::kHonorOverlapping);
  EXPECT_EQ(profile->traits.multi_reply_max_ranges, 64u);
  EXPECT_TRUE(profile->traits.cache_enabled);
  EXPECT_GT(profile->traits.response_pad_bytes, 0u);
  const auto* logic = dynamic_cast<RuleBasedLogic*>(profile->logic.get());
  ASSERT_NE(logic, nullptr);
  EXPECT_EQ(logic->rules().size(), 5u);
  EXPECT_EQ(logic->rules()[0].first_below, 1024u);
  EXPECT_EQ(logic->rules()[2].size_at_least, 10485760u);
}

TEST(ProfileSpec, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_profile_spec("no colon here", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_profile_spec("rule: single-closed -> explode", &error));
  EXPECT_FALSE(parse_profile_spec("rule: weird-shape -> lazy", &error));
  EXPECT_FALSE(parse_profile_spec("rule: multi if wat>5 -> lazy", &error));
  EXPECT_FALSE(parse_profile_spec("rule: multi lazy", &error));  // no arrow
  EXPECT_FALSE(parse_profile_spec("reply: sometimes", &error));
  EXPECT_FALSE(parse_profile_spec("cache: maybe", &error));
  EXPECT_FALSE(parse_profile_spec("limit.total_header_bytes: many", &error));
  EXPECT_FALSE(parse_profile_spec("unknown.key: 5", &error));
}

TEST(ProfileSpec, ActionParameters) {
  const auto profile = parse_profile_spec(
      "rule: single-closed -> expand:4096\nrule: default -> slice:65536\n");
  ASSERT_TRUE(profile);
  const auto* logic = dynamic_cast<RuleBasedLogic*>(profile->logic.get());
  ASSERT_NE(logic, nullptr);
  EXPECT_EQ(logic->rules()[0].action.kind, RuleAction::Kind::kExpand);
  EXPECT_EQ(logic->rules()[0].action.parameter, 4096u);
  EXPECT_EQ(logic->rules()[1].action.kind, RuleAction::Kind::kSlice);
  EXPECT_EQ(logic->rules()[1].action.parameter, 65536u);
}

// ---------------------------------------------------------------------------
// Rule evaluation
// ---------------------------------------------------------------------------

core::SingleCdnTestbed bed_for(const char* spec, std::uint64_t size) {
  auto profile = parse_profile_spec(spec);
  EXPECT_TRUE(profile);
  core::SingleCdnTestbed bed(std::move(*profile));
  bed.origin().resources().add_synthetic("/r.bin", size);
  return bed;
}

Response send_range(core::SingleCdnTestbed& bed, const std::string& range,
                    const std::string& cb = "1") {
  Request req = http::make_get("h.example", "/r.bin?cb=" + cb);
  if (!range.empty()) req.headers.add("Range", range);
  return bed.send(req);
}

TEST(RuleBasedLogic, FirstMatchWins) {
  auto bed = bed_for(
      "rule: single-closed if first<1024 -> delete\n"
      "rule: single-closed -> lazy\n",
      1u << 20);
  send_range(bed, "bytes=0-0", "a");
  EXPECT_FALSE(bed.origin().request_log()[0].headers.has("Range"));
  send_range(bed, "bytes=2048-2049", "b");
  EXPECT_EQ(bed.origin().request_log()[1].headers.get("Range"),
            "bytes=2048-2049");
}

TEST(RuleBasedLogic, SizeConditionTriggersHeadProbe) {
  auto bed = bed_for("rule: single-suffix if size<10485760 -> delete\n"
                     "rule: default -> lazy\n",
                     1u << 20);
  send_range(bed, "bytes=-1");
  ASSERT_EQ(bed.origin().request_log().size(), 2u);
  EXPECT_EQ(bed.origin().request_log()[0].method, http::Method::HEAD);
  EXPECT_FALSE(bed.origin().request_log()[1].headers.has("Range"));
}

TEST(RuleBasedLogic, UnmatchedRequestsFallBackToLazy) {
  auto bed = bed_for("rule: single-suffix -> delete\n", 1u << 20);
  send_range(bed, "bytes=5-9");
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"), "bytes=5-9");
}

TEST(RuleBasedLogic, ExpandAndSliceActionsWork) {
  auto bed = bed_for("rule: single-closed -> expand:100\n", 1u << 20);
  const Response resp = send_range(bed, "bytes=10-19");
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 10u);
  EXPECT_EQ(bed.origin().request_log()[0].headers.get("Range"), "bytes=10-119");

  auto sliced = bed_for("rule: default -> slice:4096\n", 1u << 20);
  const Response sresp = send_range(sliced, "bytes=0-0");
  EXPECT_EQ(sresp.status, 206);
  EXPECT_LT(sliced.origin_traffic().response_bytes(), 8192u);
}

// ---------------------------------------------------------------------------
// Differential: rule-spec replicas of built-in vendors behave identically
// under the policy scanner.
// ---------------------------------------------------------------------------

void expect_same_scan(VendorProfile (*make_replica)(), Vendor builtin) {
  // Compare forwarding signatures per probe at two file sizes.
  for (const std::uint64_t size : {1u << 20, 12u << 20}) {
    for (const auto& probe : core::standard_forward_probes()) {
      core::SingleCdnTestbed a(make_profile(builtin));
      a.origin().resources().add_synthetic("/d.bin", size);
      core::SingleCdnTestbed b(make_replica());
      b.origin().resources().add_synthetic("/d.bin", size);

      Request req = http::make_get("h.example", "/d.bin?cb=1");
      req.headers.add("Range", probe.range.to_string());
      a.send(req);
      b.send(req);

      // Identical origin-side Range header sequences...
      ASSERT_EQ(a.origin().request_log().size(), b.origin().request_log().size())
          << vendor_name(builtin) << " " << probe.label << " size=" << size;
      for (std::size_t i = 0; i < a.origin().request_log().size(); ++i) {
        EXPECT_EQ(a.origin().request_log()[i].headers.get_or("Range", ""),
                  b.origin().request_log()[i].headers.get_or("Range", ""))
            << vendor_name(builtin) << " " << probe.label;
      }
      // ...and identical origin-side byte totals.
      EXPECT_EQ(a.origin_traffic().response_bytes(),
                b.origin_traffic().response_bytes())
          << vendor_name(builtin) << " " << probe.label;
    }
  }
}

TEST(RuleDifferential, Cdn77ReplicaMatchesBuiltin) {
  expect_same_scan(
      [] {
        return *parse_profile_spec(
            "name: CDN77-replica\n"
            "limit.single_header_line_bytes: 16384\n"
            "reply: coalesce\n"
            "rule: single-closed if first<1024 -> delete\n"
            "rule: default -> lazy\n");
      },
      Vendor::kCdn77);
}

TEST(RuleDifferential, TencentReplicaMatchesBuiltin) {
  expect_same_scan(
      [] {
        return *parse_profile_spec(
            "name: Tencent-replica\n"
            "reply: coalesce\n"
            "rule: single-closed -> delete\n"
            "rule: multi -> delete\n"
            "rule: default -> lazy\n");
      },
      Vendor::kTencentCloud);
}

TEST(RuleDifferential, HuaweiReplicaMatchesBuiltin) {
  expect_same_scan(
      [] {
        return *parse_profile_spec(
            "name: Huawei-replica\n"
            "reply: coalesce\n"
            "rule: single-open -> lazy\n"
            "rule: single-suffix if size<10485760 -> delete\n"
            "rule: single-closed if size>=10485760 -> delete\n"
            "rule: multi -> delete\n"
            "rule: default -> lazy\n");
      },
      Vendor::kHuaweiCloud);
}

}  // namespace
}  // namespace rangeamp::cdn
