// Vendor resilience: retry budgets, per-attempt timeouts, degradation
// policies (synthesize-error / serve-stale / negative-cache) and the
// truncated-entity cache-poisoning guard.
#include <gtest/gtest.h>

#include "cdn/logic.h"
#include "cdn/node.h"
#include "cdn/rules.h"
#include "core/testbed.h"

namespace rangeamp::cdn {
namespace {

using http::Body;
using http::Request;
using http::Response;

VendorProfile resilient_profile(int retries,
                                DegradationPolicy degradation,
                                double cache_ttl = 0) {
  VendorProfile profile;
  profile.traits.name = "TestCDN";
  profile.traits.response_identity_headers = {{"Server", "TestCDN"}};
  profile.traits.multipart_boundary = "test_boundary_123";
  profile.traits.resilience.max_retries = retries;
  profile.traits.resilience.degradation = degradation;
  profile.traits.cache_ttl_seconds = cache_ttl;
  profile.logic = std::make_unique<DeletionLogic>();
  return profile;
}

Request ranged(std::string target, std::string range) {
  Request req = http::make_get("site.example", std::move(target));
  if (!range.empty()) req.headers.add("Range", std::move(range));
  return req;
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

TEST(Resilience, RetriesUntilTheFaultClearsThenServes) {
  core::SingleCdnTestbed bed(
      resilient_profile(2, DegradationPolicy::kSynthesizeError));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_first(2, net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(faults.transfers_seen(), 3u);  // two faulted attempts + success
  EXPECT_EQ(faults.faults_injected(), 2u);
}

TEST(Resilience, ExhaustedBudgetSynthesizesBadGateway) {
  core::SingleCdnTestbed bed(
      resilient_profile(1, DegradationPolicy::kSynthesizeError));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, http::kBadGateway);
  EXPECT_EQ(resp.headers.get_or("Server", ""), "TestCDN");  // vendor-styled
  EXPECT_EQ(faults.transfers_seen(), 2u);  // 1 + max_retries, not more
}

TEST(Resilience, TimeoutFailuresSynthesizeGatewayTimeout) {
  VendorProfile profile =
      resilient_profile(0, DegradationPolicy::kSynthesizeError);
  profile.traits.resilience.attempt_timeout_seconds = 1.0;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::latency(10.0));
  bed.set_origin_fault_injector(&faults);

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, http::kGatewayTimeout);
}

TEST(Resilience, RealUpstream5xxIsRetriedThenRelayed) {
  core::SingleCdnTestbed bed(
      resilient_profile(2, DegradationPolicy::kSynthesizeError));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::status_code(503));
  bed.origin().config().fault_injector = &faults;

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  // The concrete 503 that survived the budget is relayed, not synthesized.
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.headers.get_or("Server", ""), "TestCDN");
  EXPECT_EQ(faults.transfers_seen(), 3u);
}

// ---------------------------------------------------------------------------
// Degradation: serve-stale (RFC 5861 stale-if-error)
// ---------------------------------------------------------------------------

class ServeStaleTest : public ::testing::Test {
 protected:
  void prime(core::SingleCdnTestbed& bed) {
    bed.cdn().set_clock([this] { return now_; });
    bed.origin().resources().add_synthetic("/r.bin", 1000);
    now_ = 0;
    EXPECT_EQ(bed.send(ranged("/r.bin", "")).status, 200);  // cache fill
    now_ = 120;  // past the 60s TTL: the entry is stale
  }

  double now_ = 0;
};

TEST_F(ServeStaleTest, FailedRevalidationServesStaleWithWarning) {
  core::SingleCdnTestbed bed(
      resilient_profile(0, DegradationPolicy::kServeStale, 60));
  prime(bed);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::status_code(503));
  bed.origin().config().fault_injector = &faults;

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-4"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 5u);
  EXPECT_EQ(resp.headers.get_or("Warning", ""), "111 - \"Revalidation Failed\"");
}

TEST_F(ServeStaleTest, StaleCopyShortCircuitsTheRetryBudget) {
  core::SingleCdnTestbed bed(
      resilient_profile(3, DegradationPolicy::kServeStale, 60));
  prime(bed);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  const Response resp = bed.send(ranged("/r.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, 206);
  // serve_stale_skips_retries: one attempt, then the stale copy absorbs it.
  EXPECT_EQ(faults.transfers_seen(), 1u);
}

TEST_F(ServeStaleTest, WithoutStaleCopyTheFailureStillDegrades) {
  core::SingleCdnTestbed bed(
      resilient_profile(1, DegradationPolicy::kServeStale, 60));
  prime(bed);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  // A different URL has no cached copy to fall back on.
  bed.origin().resources().add_synthetic("/other.bin", 1000);
  const Response resp = bed.send(ranged("/other.bin", "bytes=0-0"));
  EXPECT_EQ(resp.status, http::kBadGateway);
  EXPECT_EQ(faults.transfers_seen(), 2u);  // full budget: no short-circuit
}

// ---------------------------------------------------------------------------
// Degradation: negative caching
// ---------------------------------------------------------------------------

TEST(NegativeCache, FailureIsRememberedForItsTtl) {
  VendorProfile profile =
      resilient_profile(0, DegradationPolicy::kNegativeCache, 60);
  profile.traits.resilience.negative_cache_ttl_seconds = 30;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  double now = 0;
  bed.cdn().set_clock([&now] { return now; });
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0")).status, http::kBadGateway);
  EXPECT_EQ(faults.transfers_seen(), 1u);

  // Within the negative TTL: answered from the marker, no upstream attempt.
  now = 10;
  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0")).status, http::kBadGateway);
  EXPECT_EQ(faults.transfers_seen(), 1u);

  // Past the negative TTL (and healthy again): the origin is re-tried.
  now = 40;
  faults.clear_rules();
  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0")).status, 206);
  EXPECT_EQ(faults.transfers_seen(), 2u);
}

// ---------------------------------------------------------------------------
// Truncated-entity cache poisoning guard
// ---------------------------------------------------------------------------

TEST(PoisonGuard, EntityFromResponseRefusesShortBodies) {
  Response upstream = http::make_response(http::kOk, Body::synthetic(3, 0, 500));
  upstream.headers.set("Content-Length", "1000");
  EXPECT_FALSE(CdnNode::entity_from_response(upstream));
  upstream.headers.set("Content-Length", "500");
  EXPECT_TRUE(CdnNode::entity_from_response(upstream));
}

TEST(PoisonGuard, TruncatedFetchNeverPoisonsTheCache) {
  core::SingleCdnTestbed bed(
      resilient_profile(0, DegradationPolicy::kSynthesizeError));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_nth(1, net::FaultSpec::truncate(999));
  bed.set_origin_fault_injector(&faults);

  EXPECT_EQ(bed.send(ranged("/r.bin", "bytes=0-0")).status, http::kBadGateway);
  EXPECT_EQ(bed.cdn().cache().size(), 0u);

  // The next (healthy) fetch serves the real bytes end to end.
  const Response resp = bed.send(ranged("/r.bin", "bytes=995-999"));
  EXPECT_EQ(resp.status, 206);
  const Response full = bed.send(ranged("/r.bin", ""));
  EXPECT_EQ(resp.body.materialize(), full.body.materialize().substr(995, 5));
}

TEST(PoisonGuard, OriginTruncationIsNotCachedEither) {
  // Origin-level truncation (body short of its own Content-Length) must not
  // produce a cacheable entity even though the transport succeeded.
  core::SingleCdnTestbed bed(
      resilient_profile(0, DegradationPolicy::kSynthesizeError));
  bed.origin().resources().add_synthetic("/r.bin", 1000);
  net::FaultInjector faults;
  faults.fail_nth(1, net::FaultSpec::truncate(100));
  bed.origin().config().fault_injector = &faults;

  const Response first = bed.send(ranged("/r.bin", ""));
  EXPECT_EQ(bed.cdn().cache().size(), 0u);
  EXPECT_EQ(first.body.size(), 100u);  // the damaged 200 is relayed as-is

  const Response second = bed.send(ranged("/r.bin", ""));
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Profile-spec resilience knobs
// ---------------------------------------------------------------------------

TEST(ProfileSpecResilience, ParsesAllKnobs) {
  const char* spec = R"(name: ResilientCDN
resilience.retries: 3
resilience.timeout_seconds: 2.5
resilience.backoff_initial_seconds: 0.25
resilience.degrade: serve-stale
rule: default -> lazy
)";
  std::string error;
  const auto profile = parse_profile_spec(spec, &error);
  ASSERT_TRUE(profile) << error;
  EXPECT_EQ(profile->traits.resilience.max_retries, 3);
  EXPECT_DOUBLE_EQ(profile->traits.resilience.attempt_timeout_seconds, 2.5);
  EXPECT_DOUBLE_EQ(profile->traits.resilience.backoff_initial_seconds, 0.25);
  EXPECT_EQ(profile->traits.resilience.degradation, DegradationPolicy::kServeStale);

  EXPECT_FALSE(parse_profile_spec("resilience.degrade: shrug", &error));
  EXPECT_FALSE(parse_profile_spec("resilience.retries: many", &error));
  EXPECT_FALSE(parse_profile_spec("resilience.timeout_seconds: -1", &error));
}

}  // namespace
}  // namespace rangeamp::cdn
