// Per-vendor conformance tests: each test asserts one row of the paper's
// Tables I (SBR forwarding), II (OBR forwarding) or III (OBR replying).
#include "cdn/profiles.h"

#include <gtest/gtest.h>

#include "core/obr.h"
#include "core/testbed.h"
#include "http/multipart.h"

namespace rangeamp::cdn {
namespace {

using http::Request;
using http::Response;

constexpr std::uint64_t kMiB = 1u << 20;

struct Observed {
  Response response;
  // Origin-side view: (method, Range header or "") per request.
  std::vector<std::pair<http::Method, std::string>> origin_requests;
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t client_response_bytes = 0;
};

Observed run(Vendor vendor, std::uint64_t file_size, const std::string& range,
             const ProfileOptions& options = {}, int sends = 1,
             bool origin_ranges_enabled = true) {
  origin::OriginConfig config;
  config.supports_ranges = origin_ranges_enabled;
  core::SingleCdnTestbed bed(make_profile(vendor, options), config);
  bed.origin().resources().add_synthetic("/t.bin", file_size);
  Request req = http::make_get("site.example", "/t.bin?cb=1");
  if (!range.empty()) req.headers.add("Range", range);
  Observed out;
  for (int i = 0; i < sends; ++i) out.response = bed.send(req);
  for (const auto& r : bed.origin().request_log()) {
    out.origin_requests.emplace_back(
        r.method, std::string{r.headers.get_or("Range", "")});
  }
  out.origin_response_bytes = bed.origin_traffic().response_bytes();
  out.client_response_bytes = bed.client_traffic().response_bytes();
  return out;
}

bool full_entity_pulled(const Observed& o, std::uint64_t file_size) {
  return o.origin_response_bytes >= file_size;
}

std::size_t multipart_parts(const Response& resp) {
  const auto ct = resp.headers.get("Content-Type");
  if (!ct) return 0;
  const auto boundary = http::boundary_from_content_type(*ct);
  if (!boundary) return 0;
  const auto parts =
      http::parse_multipart_byteranges(resp.body.materialize(), *boundary);
  return parts ? parts->size() : 0;
}

// ---------------------------------------------------------------------------
// Table I rows -- SBR-vulnerable forwarding.
// ---------------------------------------------------------------------------

TEST(TableI_Akamai, ClosedAndSuffixDeleted) {
  for (const char* range : {"bytes=0-0", "bytes=-1"}) {
    const auto o = run(Vendor::kAkamai, kMiB, range);
    ASSERT_EQ(o.origin_requests.size(), 1u) << range;
    EXPECT_EQ(o.origin_requests[0].second, "") << range;  // "None"
    EXPECT_TRUE(full_entity_pulled(o, kMiB));
    EXPECT_EQ(o.response.status, 206);
    EXPECT_EQ(o.response.body.size(), 1u);
  }
}

TEST(TableI_AlibabaCloud, SuffixDeletedWhenRangeOptionDisabled) {
  const auto o = run(Vendor::kAlibabaCloud, kMiB, "bytes=-1");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_AlibabaCloud, ClosedRangeForwardedLazily) {
  const auto o = run(Vendor::kAlibabaCloud, kMiB, "bytes=0-0");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_AlibabaCloud, NotVulnerableWithRangeOptionEnabled) {
  ProfileOptions options;
  options.origin_range_option_disabled = false;
  const auto o = run(Vendor::kAlibabaCloud, kMiB, "bytes=-1", options);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=-1");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_Azure, SmallFileDeletion) {
  const auto o = run(Vendor::kAzure, kMiB, "bytes=0-0");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_Azure, LargeFileSecondWindowFetch) {
  // Table I: "bytes=8388608-8388608 (F>8MB)" -> "None & bytes=8388608-16777215".
  const auto o = run(Vendor::kAzure, 25 * kMiB, "bytes=8388608-8388608");
  ASSERT_EQ(o.origin_requests.size(), 2u);
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_EQ(o.origin_requests[1].second, "bytes=8388608-16777215");
  // First connection aborted a little past 8 MB; second shipped the window.
  EXPECT_GT(o.origin_response_bytes, 16 * kMiB);
  EXPECT_LT(o.origin_response_bytes, 17 * kMiB);
  EXPECT_EQ(o.response.status, 206);
  EXPECT_EQ(o.response.body.size(), 1u);
}

TEST(TableI_Azure, LargeFilePrefixRangeServedFromAbortedPull) {
  const auto o = run(Vendor::kAzure, 25 * kMiB, "bytes=0-0");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "");
  // ~8 MB pulled, not 25 MB.
  EXPECT_LT(o.origin_response_bytes, 9 * kMiB);
  EXPECT_EQ(o.response.status, 206);
}

TEST(TableI_Cdn77, ClosedBelow1024Deleted) {
  const auto o = run(Vendor::kCdn77, kMiB, "bytes=0-0");
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_Cdn77, ClosedAtOrAbove1024Lazy) {
  const auto o = run(Vendor::kCdn77, kMiB, "bytes=1024-1030");
  EXPECT_EQ(o.origin_requests[0].second, "bytes=1024-1030");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
  const auto boundary = run(Vendor::kCdn77, kMiB, "bytes=1023-1030");
  EXPECT_EQ(boundary.origin_requests[0].second, "");  // 1023 < 1024
}

TEST(TableI_Cdnsun, ZeroStartDeleted) {
  for (const char* range : {"bytes=0-0", "bytes=0-499", "bytes=0-"}) {
    const auto o = run(Vendor::kCdnsun, kMiB, range);
    EXPECT_EQ(o.origin_requests[0].second, "") << range;
    EXPECT_TRUE(full_entity_pulled(o, kMiB)) << range;
  }
}

TEST(TableI_Cdnsun, NonZeroStartLazy) {
  const auto o = run(Vendor::kCdnsun, kMiB, "bytes=1-5");
  EXPECT_EQ(o.origin_requests[0].second, "bytes=1-5");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_Cloudflare, CacheableModeDeletesClosedAndSuffix) {
  for (const char* range : {"bytes=0-0", "bytes=-1"}) {
    const auto o = run(Vendor::kCloudflare, kMiB, range);
    EXPECT_EQ(o.origin_requests[0].second, "") << range;
    EXPECT_TRUE(full_entity_pulled(o, kMiB)) << range;
  }
}

TEST(TableI_Cloudflare, BypassModeIsPurePassThrough) {
  ProfileOptions options;
  options.cloudflare_mode = ProfileOptions::CloudflareMode::kBypass;
  const auto o = run(Vendor::kCloudflare, kMiB, "bytes=0-0", options);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_CloudFront, SingleRangeBlockExpansion) {
  // first' = (first >> 20) << 20, last' = (((last >> 20) + 1) << 20) - 1.
  const auto o = run(Vendor::kCloudFront, 25 * kMiB, "bytes=3145729-3145730");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=3145728-4194303");
  EXPECT_EQ(o.response.status, 206);
  EXPECT_EQ(o.response.body.size(), 2u);
  // Exactly one MiB block crossed the cdn-origin segment.
  EXPECT_GT(o.origin_response_bytes, kMiB);
  EXPECT_LT(o.origin_response_bytes, kMiB + 2048);
}

TEST(TableI_CloudFront, MultiRangeExpandsToCoveringSpanUnder10MiB) {
  // The paper's exploited case: bytes=0-0,9437184-9437184 -> bytes=0-10485759.
  const auto o = run(Vendor::kCloudFront, 25 * kMiB, "bytes=0-0,9437184-9437184");
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-10485759");
  EXPECT_EQ(o.response.status, 206);
  EXPECT_EQ(multipart_parts(o.response), 2u);
  EXPECT_GT(o.origin_response_bytes, 10 * kMiB);
  EXPECT_LT(o.origin_response_bytes, 10 * kMiB + kMiB);
}

TEST(TableI_Fastly, ClosedAndSuffixDeleted) {
  for (const char* range : {"bytes=0-0", "bytes=-1"}) {
    const auto o = run(Vendor::kFastly, kMiB, range);
    EXPECT_EQ(o.origin_requests[0].second, "") << range;
    EXPECT_TRUE(full_entity_pulled(o, kMiB)) << range;
  }
}

TEST(TableI_GcoreLabs, ClosedAndSuffixDeleted) {
  for (const char* range : {"bytes=0-0", "bytes=-1"}) {
    const auto o = run(Vendor::kGcoreLabs, kMiB, range);
    EXPECT_EQ(o.origin_requests[0].second, "") << range;
    EXPECT_TRUE(full_entity_pulled(o, kMiB)) << range;
  }
}

TEST(TableI_HuaweiCloud, SuffixSmallFileHeadThenDeletion) {
  // "bytes=-suffix (F<10MB) -> None (*)": a HEAD size probe then a full GET.
  const auto o = run(Vendor::kHuaweiCloud, kMiB, "bytes=-1");
  ASSERT_EQ(o.origin_requests.size(), 2u);
  EXPECT_EQ(o.origin_requests[0].first, http::Method::HEAD);
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_EQ(o.origin_requests[1].first, http::Method::GET);
  EXPECT_EQ(o.origin_requests[1].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_HuaweiCloud, SuffixLargeFileLazy) {
  const auto o = run(Vendor::kHuaweiCloud, 12 * kMiB, "bytes=-1");
  EXPECT_EQ(o.origin_requests.back().second, "bytes=-1");
  EXPECT_FALSE(full_entity_pulled(o, 12 * kMiB));
}

TEST(TableI_HuaweiCloud, ClosedLargeFileDeleted) {
  const auto o = run(Vendor::kHuaweiCloud, 12 * kMiB, "bytes=0-0");
  ASSERT_EQ(o.origin_requests.size(), 2u);  // "None & None"
  EXPECT_EQ(o.origin_requests[1].second, "");
  EXPECT_TRUE(full_entity_pulled(o, 12 * kMiB));
}

TEST(TableI_HuaweiCloud, ClosedSmallFileLazy) {
  const auto o = run(Vendor::kHuaweiCloud, kMiB, "bytes=0-0");
  EXPECT_EQ(o.origin_requests.back().second, "bytes=0-0");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_HuaweiCloud, NotVulnerableWithRangeOptionDisabled) {
  ProfileOptions options;
  options.huawei_range_option_enabled = false;
  const auto o = run(Vendor::kHuaweiCloud, kMiB, "bytes=-1", options);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=-1");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_KeyCdn, FirstSendLazySecondSendDeletes) {
  // Row: "bytes=first-last (& bytes=first-last) -> bytes=first-last (& None)".
  const auto o = run(Vendor::kKeyCdn, kMiB, "bytes=0-0", {}, /*sends=*/2);
  ASSERT_EQ(o.origin_requests.size(), 2u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_EQ(o.origin_requests[1].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_KeyCdn, SingleSendAloneDoesNotAmplify) {
  const auto o = run(Vendor::kKeyCdn, kMiB, "bytes=0-0", {}, /*sends=*/1);
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_KeyCdn, FirstSightingNotCached) {
  // After the pair of sends the entity is cached; a third request must not
  // hit the origin again.
  origin::OriginConfig config;
  core::SingleCdnTestbed bed(make_profile(Vendor::kKeyCdn), config);
  bed.origin().resources().add_synthetic("/t.bin", kMiB);
  Request req = http::make_get("site.example", "/t.bin?cb=1");
  req.headers.add("Range", "bytes=0-0");
  bed.send(req);
  EXPECT_EQ(bed.cdn().cache().size(), 0u);  // not cached on first sight
  bed.send(req);
  EXPECT_EQ(bed.cdn().cache().size(), 1u);
  bed.send(req);
  EXPECT_EQ(bed.origin().request_log().size(), 2u);
}

TEST(TableI_StackPath, LazyThenDeletionOn206) {
  // Row: "bytes=... -> bytes=... [& None]".
  const auto o = run(Vendor::kStackPath, kMiB, "bytes=0-0");
  ASSERT_EQ(o.origin_requests.size(), 2u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_EQ(o.origin_requests[1].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_StackPath, NoSecondFetchWhenOriginReturns200) {
  const auto o = run(Vendor::kStackPath, kMiB, "bytes=0-0", {}, 1,
                     /*origin_ranges_enabled=*/false);
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_EQ(o.response.status, 206);  // range-served from the 200 entity
}

TEST(TableI_TencentCloud, ClosedDeletedWhenOptionDisabled) {
  const auto o = run(Vendor::kTencentCloud, kMiB, "bytes=0-0");
  EXPECT_EQ(o.origin_requests[0].second, "");
  EXPECT_TRUE(full_entity_pulled(o, kMiB));
}

TEST(TableI_TencentCloud, SuffixLazy) {
  const auto o = run(Vendor::kTencentCloud, kMiB, "bytes=-1");
  EXPECT_EQ(o.origin_requests[0].second, "bytes=-1");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

TEST(TableI_TencentCloud, NotVulnerableWithOptionEnabled) {
  ProfileOptions options;
  options.origin_range_option_disabled = false;
  const auto o = run(Vendor::kTencentCloud, kMiB, "bytes=0-0", options);
  EXPECT_EQ(o.origin_requests[0].second, "bytes=0-0");
  EXPECT_FALSE(full_entity_pulled(o, kMiB));
}

// ---------------------------------------------------------------------------
// Table II rows -- OBR FCDN forwarding (multi-range unchanged).
// ---------------------------------------------------------------------------

TEST(TableII, Cdn77ForwardsOverlappingMultiUnchanged) {
  const std::string range = core::obr_range_case(Vendor::kCdn77, 3).to_string();
  const auto o = run(Vendor::kCdn77, 1024, range);
  ASSERT_EQ(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, range);
}

TEST(TableII, CdnsunForwardsStart1Unchanged) {
  const std::string range = core::obr_range_case(Vendor::kCdnsun, 3).to_string();
  const auto o = run(Vendor::kCdnsun, 1024, range);
  EXPECT_EQ(o.origin_requests[0].second, range);
}

TEST(TableII, CloudflareBypassForwardsUnchanged) {
  ProfileOptions options;
  options.cloudflare_mode = ProfileOptions::CloudflareMode::kBypass;
  const std::string range = "bytes=0-,0-,0-";
  const auto o = run(Vendor::kCloudflare, 1024, range, options);
  EXPECT_EQ(o.origin_requests[0].second, range);
}

TEST(TableII, CloudflareCacheableDoesNotForwardMulti) {
  const auto o = run(Vendor::kCloudflare, 1024, "bytes=0-,0-,0-");
  EXPECT_EQ(o.origin_requests[0].second, "");
}

TEST(TableII, StackPathForwardsUnchangedThenRefetches) {
  const std::string range = "bytes=0-,0-,0-";
  const auto o = run(Vendor::kStackPath, 1024, range);
  ASSERT_GE(o.origin_requests.size(), 1u);
  EXPECT_EQ(o.origin_requests[0].second, range);
}

TEST(TableII, NonFcdnVendorsDoNotForwardMultiUnchanged) {
  for (const Vendor vendor :
       {Vendor::kAkamai, Vendor::kAlibabaCloud, Vendor::kAzure,
        Vendor::kCloudFront, Vendor::kFastly, Vendor::kGcoreLabs,
        Vendor::kHuaweiCloud, Vendor::kKeyCdn, Vendor::kTencentCloud}) {
    const std::string range = "bytes=0-,0-,0-";
    const auto o = run(vendor, 1024, range);
    for (const auto& [method, forwarded] : o.origin_requests) {
      EXPECT_NE(forwarded, range) << vendor_name(vendor);
    }
  }
}

// ---------------------------------------------------------------------------
// Table III rows -- OBR BCDN replying (overlapping n-part).
// ---------------------------------------------------------------------------

Observed run_as_bcdn(Vendor vendor, std::size_t n) {
  return run(vendor, 1024,
             core::obr_range_case(Vendor::kCloudflare, n).to_string(), {}, 1,
             /*origin_ranges_enabled=*/false);
}

TEST(TableIII, AkamaiHonorsOverlappingNparts) {
  const auto o = run_as_bcdn(Vendor::kAkamai, 8);
  EXPECT_EQ(o.response.status, 206);
  EXPECT_EQ(multipart_parts(o.response), 8u);
  EXPECT_GE(o.response.body.size(), 8 * 1024u);
}

TEST(TableIII, StackPathHonorsOverlappingNparts) {
  const auto o = run_as_bcdn(Vendor::kStackPath, 8);
  EXPECT_EQ(o.response.status, 206);
  EXPECT_EQ(multipart_parts(o.response), 8u);
}

TEST(TableIII, AzureHonorsUpTo64) {
  const auto at64 = run_as_bcdn(Vendor::kAzure, 64);
  EXPECT_EQ(at64.response.status, 206);
  EXPECT_EQ(multipart_parts(at64.response), 64u);
  const auto at65 = run_as_bcdn(Vendor::kAzure, 65);
  EXPECT_EQ(at65.response.status, 200);
  EXPECT_EQ(at65.response.body.size(), 1024u);
}

TEST(TableIII, GuardedVendorsNeverMultiplyPayload) {
  for (const Vendor vendor :
       {Vendor::kAlibabaCloud, Vendor::kCdn77, Vendor::kCdnsun,
        Vendor::kCloudflare, Vendor::kCloudFront, Vendor::kFastly,
        Vendor::kGcoreLabs, Vendor::kHuaweiCloud, Vendor::kKeyCdn,
        Vendor::kTencentCloud}) {
    const auto o = run_as_bcdn(vendor, 8);
    EXPECT_LT(o.response.body.size(), 2 * 1024u) << vendor_name(vendor);
  }
}

// ---------------------------------------------------------------------------
// Identity & registry sanity.
// ---------------------------------------------------------------------------

TEST(Profiles, AllVendorsConstructAndServe) {
  for (const Vendor vendor : kAllVendors) {
    const auto o = run(vendor, 4096, "");
    EXPECT_EQ(o.response.status, 200) << vendor_name(vendor);
    EXPECT_EQ(o.response.body.size(), 4096u) << vendor_name(vendor);
    EXPECT_TRUE(o.response.headers.has("Accept-Ranges")) << vendor_name(vendor);
  }
}

TEST(Profiles, VendorNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (const Vendor vendor : kAllVendors) {
    const auto name = vendor_name(vendor);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(Profiles, CalibratedPadsAreAppliedForEveryVendor) {
  for (const Vendor vendor : kAllVendors) {
    const VendorProfile profile = make_profile(vendor);
    EXPECT_GT(profile.traits.client_response_target_bytes, 0u)
        << vendor_name(vendor);
    EXPECT_GT(profile.traits.response_pad_bytes, 0u) << vendor_name(vendor);
  }
}

TEST(Profiles, LegitimateRangedDownloadStillWorksEverywhere) {
  // A sanity guard: the vulnerable behaviours must not break correct range
  // semantics for a normal client.
  for (const Vendor vendor : kAllVendors) {
    origin::OriginConfig config;
    core::SingleCdnTestbed bed(make_profile(vendor), config);
    bed.origin().resources().add_synthetic("/file.bin", 64 * 1024);
    const std::string expected =
        bed.origin().resources().find("/file.bin")->entity.materialize();
    Request req = http::make_get("site.example", "/file.bin");
    req.headers.add("Range", "bytes=1000-1999");
    const Response resp = bed.send(req);
    ASSERT_EQ(resp.status, 206) << vendor_name(vendor);
    EXPECT_EQ(resp.body.materialize(), expected.substr(1000, 1000))
        << vendor_name(vendor);
    EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 1000-1999/65536")
        << vendor_name(vendor);
  }
}

}  // namespace
}  // namespace rangeamp::cdn
