// Fig 6a over real loopback TCP: the SBR amplification factor measured on
// the SocketTransport backend, with wall-clock timing.
//
// The committed Fig 6 CSVs come from the deterministic in-memory pipe
// (bench_table4_fig6_sbr_amplification).  This bench re-runs the 10 MB
// Fig 6a row with every HTTP/1.1 segment on real sockets -- one connection
// per exchange through net::SocketTransport -- and checks that the
// wall-clock backend agrees with the fluid model: the measured
// amplification factor must land within 20% of the in-memory reference for
// every vendor (exit 1 otherwise).  In practice the two agree exactly,
// because both backends count serialized bytes; the tolerance absorbs any
// future framing drift without letting a broken backend pass.
//
// No CSV output: wall-clock numbers vary run to run and must never feed the
// reproduce.sh drift gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/rangeamp.h"
#include "net/transport_factory.h"

using namespace rangeamp;

namespace {

struct SocketRun {
  core::SbrMeasurement m;
  double wall_seconds = 0;
};

// core::measure_sbr with a transport knob and a stopwatch (no tracing: the
// point here is the socket path, not the span tree).
SocketRun measure_sbr_on(const net::TransportSpec& spec, cdn::Vendor vendor,
                         std::uint64_t file_size) {
  core::SingleCdnTestbed bed(cdn::make_profile(vendor), {}, spec);
  bed.origin().resources().add_synthetic("/payload.bin", file_size);

  const core::SbrPlan plan = core::sbr_plan(vendor, file_size);
  http::Request request =
      http::make_get(std::string{core::kDefaultHost}, "/payload.bin?cb=000001");
  request.headers.add("Range", plan.range.to_string());

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < plan.sends; ++i) bed.send(request);
  const auto stop = std::chrono::steady_clock::now();

  SocketRun run;
  run.wall_seconds = std::chrono::duration<double>(stop - start).count();
  run.m.vendor = vendor;
  run.m.file_size = file_size;
  run.m.exploited_case = plan.description;
  run.m.client_response_bytes = bed.client_traffic().response_bytes();
  run.m.origin_response_bytes = bed.origin_traffic().response_bytes();
  run.m.client_request_bytes = bed.client_traffic().request_bytes();
  run.m.origin_request_bytes = bed.origin_traffic().request_bytes();
  run.m.amplification =
      run.m.client_response_bytes == 0
          ? 0
          : static_cast<double>(run.m.origin_response_bytes) /
                static_cast<double>(run.m.client_response_bytes);
  return run;
}

}  // namespace

int main() {
  constexpr std::uint64_t kFileSize = 10u << 20;  // the Fig 6a 10 MB row

  core::Table table({"CDN", "Exploited Range Case", "AF (in-memory)",
                     "AF (socket)", "socket wall ms", "origin MB/s"});
  int violations = 0;

  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const core::SbrMeasurement reference = core::measure_sbr(vendor, kFileSize);
    const SocketRun socket =
        measure_sbr_on(net::kSocketTransportSpec, vendor, kFileSize);

    const double tolerance = 0.20 * reference.amplification;
    const bool ok =
        std::fabs(socket.m.amplification - reference.amplification) <= tolerance;
    if (!ok) ++violations;

    const double origin_mb_per_s =
        socket.wall_seconds > 0
            ? (static_cast<double>(socket.m.origin_response_bytes) / 1048576.0) /
                  socket.wall_seconds
            : 0;
    table.add_row({std::string{cdn::vendor_name(vendor)} +
                       (ok ? "" : "  <-- DIVERGED"),
                   socket.m.exploited_case,
                   core::fixed(reference.amplification, 1),
                   core::fixed(socket.m.amplification, 1),
                   core::fixed(socket.wall_seconds * 1000.0, 1),
                   core::fixed(origin_mb_per_s, 0)});
  }

  std::printf("Fig 6a on real loopback sockets (10 MB target, one TCP "
              "connection per exchange)\n\n%s\n",
              table.to_markdown().c_str());

  if (violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d vendor(s) diverged more than 20%% from the "
                 "in-memory amplification factor\n",
                 violations);
    return 1;
  }
  std::printf("All %zu vendors within 20%% of the in-memory reference "
              "(byte accounting agrees across backends)\n",
              cdn::kAllVendors.size());
  return 0;
}
