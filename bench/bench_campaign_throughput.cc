// Campaign engine throughput: exchanges/sec of the sharded SBR campaign at
// 1/2/4/8 worker threads against the serial baseline, plus the
// serial-vs-sharded equivalence check the sharding contract promises
// (docs/parallel-model.md): the merged result of every sharded run must
// equal the serial run field for field, byte for byte.
//
// Emits BENCH_campaign.json (schema enforced by scripts/check_bench.py; CI
// uploads it as a workflow artifact so speedups are tracked PR-over-PR).
// Wall-clock timing is the only nondeterministic output here, which is why
// the JSON is gitignored while every CSV stays under the drift gate.
// The process exits non-zero if any sharded run diverges from serial.
//
// Knobs:
//   RANGEAMP_BENCH_EXCHANGES  exchanges per run (default 20000)
//   RANGEAMP_BENCH_TRIALS     timed trials per config, best kept (default 3)
//   RANGEAMP_THREADS          cap on the thread sweep (default 8)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

/// Everything deterministic a campaign run produces, flattened for
/// comparison.  Timing is deliberately absent.
struct Fingerprint {
  net::TrafficTotals attacker;
  std::uint64_t attacker_truncated = 0;
  std::uint64_t origin_response_bytes = 0;
  double amplification = 0;
  std::size_t nodes_touched = 0;
  std::vector<std::uint64_t> per_node_upstream_bytes;
  bool detector_alarmed = false;
  std::size_t detector_samples = 0;

  static Fingerprint of(const core::SbrCampaignResult& r) {
    Fingerprint f;
    f.attacker = r.attacker;
    f.attacker_truncated = r.attacker_truncated;
    f.origin_response_bytes = r.origin.response_bytes;
    f.amplification = r.amplification;
    f.nodes_touched = r.nodes_touched;
    f.per_node_upstream_bytes = r.per_node_upstream_bytes;
    f.detector_alarmed = r.detector_alarmed;
    f.detector_samples = r.detector_stats.samples;
    return f;
  }

  bool operator==(const Fingerprint& o) const {
    return attacker.request_bytes == o.attacker.request_bytes &&
           attacker.response_bytes == o.attacker.response_bytes &&
           attacker_truncated == o.attacker_truncated &&
           origin_response_bytes == o.origin_response_bytes &&
           amplification == o.amplification &&
           nodes_touched == o.nodes_touched &&
           per_node_upstream_bytes == o.per_node_upstream_bytes &&
           detector_alarmed == o.detector_alarmed &&
           detector_samples == o.detector_samples;
  }
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::string json_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

int main() {
  const std::uint64_t exchanges = env_u64("RANGEAMP_BENCH_EXCHANGES", 20000);
  const int trials =
      static_cast<int>(std::max<std::uint64_t>(1, env_u64("RANGEAMP_BENCH_TRIALS", 3)));
  const int max_threads = static_cast<int>(env_u64("RANGEAMP_THREADS", 8));
  constexpr int kDurationS = 10;
  constexpr std::size_t kShards = 64;
  const int rps = static_cast<int>(
      std::max<std::uint64_t>(1, exchanges / kDurationS));
  const std::uint64_t total = static_cast<std::uint64_t>(rps) * kDurationS;

  const auto base = core::SbrCampaignConfig::Builder()
                        .vendor(cdn::Vendor::kCloudflare)
                        .file_size(64u << 10)
                        .requests_per_second(rps)
                        .duration_s(kDurationS)
                        .edge_nodes(8);

  // Best-of-N wall clock (noise on shared CI runners only ever slows a
  // trial down); every trial's fingerprint must agree -- a run that is fast
  // but wrong is a bug, not a best time.
  const auto timed_run = [trials](const core::SbrCampaignConfig& config) {
    double best_seconds = 0;
    Fingerprint fp;
    for (int t = 0; t < trials; ++t) {
      const auto start = std::chrono::steady_clock::now();
      core::SbrCampaignResult result = core::run_sbr_campaign(config);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (t == 0) {
        best_seconds = seconds;
        fp = Fingerprint::of(result);
      } else {
        best_seconds = std::min(best_seconds, seconds);
        if (!(Fingerprint::of(result) == fp)) {
          std::fprintf(stderr,
                       "FAIL: two runs of one campaign config disagreed -- "
                       "nondeterminism in the engine\n");
          std::exit(1);
        }
      }
    }
    return std::pair<double, Fingerprint>{best_seconds, fp};
  };

  std::printf("campaign throughput: %llu exchanges, %zu shards, "
              "%u hardware threads\n",
              static_cast<unsigned long long>(total), kShards,
              std::thread::hardware_concurrency());

  const auto [serial_seconds, serial_fp] =
      timed_run(core::SbrCampaignConfig::Builder(base).build());
  const double serial_eps =
      serial_seconds > 0 ? static_cast<double>(total) / serial_seconds : 0;
  std::printf("  serial          %8.3f s  %10.0f exchanges/s\n",
              serial_seconds, serial_eps);

  std::string runs_json;
  bool all_match = true;
  for (const int threads : {1, 2, 4, 8}) {
    if (threads > max_threads) continue;
    const auto config = core::SbrCampaignConfig::Builder(base)
                            .shards(kShards)
                            .threads(threads)
                            .build();
    const auto [seconds, fp] = timed_run(config);
    const double eps =
        seconds > 0 ? static_cast<double>(total) / seconds : 0;
    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    const bool matches = fp == serial_fp;
    all_match = all_match && matches;
    std::printf("  sharded x%-2d    %8.3f s  %10.0f exchanges/s  "
                "%5.2fx vs serial  %s\n",
                threads, seconds, eps, speedup,
                matches ? "== serial" : "DIVERGED from serial");
    if (!runs_json.empty()) runs_json += ",";
    runs_json += "\n    {\"threads\": " + std::to_string(threads) +
                 ", \"seconds\": " + json_double(seconds) +
                 ", \"exchanges_per_sec\": " + json_double(eps) +
                 ", \"speedup_vs_serial\": " + json_double(speedup) +
                 ", \"matches_serial\": " + (matches ? "true" : "false") + "}";
  }

  std::string json = "{\n";
  json += "  \"bench\": \"campaign_throughput\",\n";
  json += "  \"vendor\": \"Cloudflare\",\n";
  json += "  \"file_size_bytes\": " + std::to_string(64u << 10) + ",\n";
  json += "  \"exchanges\": " + std::to_string(total) + ",\n";
  json += "  \"shards\": " + std::to_string(kShards) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"serial\": {\"seconds\": " + json_double(serial_seconds) +
          ", \"exchanges_per_sec\": " + json_double(serial_eps) + "},\n";
  json += "  \"runs\": [" + runs_json + "\n  ],\n";
  json += std::string{"  \"sharded_equals_serial\": "} +
          (all_match ? "true" : "false") + "\n";
  json += "}\n";
  core::write_file("BENCH_campaign.json", json);
  std::printf("wrote BENCH_campaign.json\n");

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: a sharded campaign diverged from the serial "
                 "baseline (see BENCH_campaign.json)\n");
    return 1;
  }
  return 0;
}
