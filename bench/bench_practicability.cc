// Section V-D/V-E beyond Fig 7: the practicability surface of a sustained
// SBR campaign --
//   * edge spread: requests rotated across ingress nodes, per-node load,
//   * detection: the paper observed "no alert" from default configurations;
//     the RangeAmpDetector shows the signature IS separable (it alarms on
//     every campaign and stays silent on a benign workload),
//   * monetary loss (section V-E): projected victim cost per vendor for a
//     laptop-scale 10 req/s day-long campaign.
//
// RANGEAMP_THREADS=N (default 1) runs each campaign sharded on N workers;
// these campaigns are shield-free, so the sharded reduction reproduces the
// serial numbers exactly (see docs/parallel-model.md) and every output byte
// stays identical at any thread count.
#include <cstdio>
#include <cstdlib>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  const char* threads_env = std::getenv("RANGEAMP_THREADS");
  const int threads = threads_env && *threads_env ? std::atoi(threads_env) : 1;

  // --- Campaign matrix: rate x spread --------------------------------------
  core::Table campaigns({"vendor", "m (req/s)", "nodes", "origin MB", "AF",
                         "origin saturated", "detector"});
  for (const auto& [vendor, m, nodes] :
       {std::tuple{cdn::Vendor::kCloudflare, 5, 1},
        std::tuple{cdn::Vendor::kCloudflare, 5, 8},
        std::tuple{cdn::Vendor::kCloudflare, 14, 8},
        std::tuple{cdn::Vendor::kAkamai, 14, 8},
        std::tuple{cdn::Vendor::kKeyCdn, 10, 8}}) {
    const auto config = core::SbrCampaignConfig::Builder()
                            .vendor(vendor)
                            .requests_per_second(m)
                            .duration_s(10)
                            .edge_nodes(static_cast<std::size_t>(nodes))
                            .shards(threads > 1 ? 8 : 1)
                            .threads(threads)
                            .build();
    const auto result = core::run_sbr_campaign(config);
    campaigns.add_row(
        {std::string{cdn::vendor_name(vendor)}, std::to_string(m),
         std::to_string(result.nodes_touched),
         core::fixed(result.origin.response_bytes / 1048576.0, 1),
         core::fixed(result.amplification, 0),
         result.bandwidth.saturated ? "YES" : "no",
         result.detector_alarmed ? "ALARM" : "silent"});
  }
  std::printf("SBR campaigns (10 s, 10 MB target, 1000 Mbps origin uplink)\n\n%s\n",
              campaigns.to_markdown().c_str());

  // --- Detector: benign baseline -------------------------------------------
  const core::LegitWorkloadConfig legit =
      core::LegitWorkloadConfig::Builder{}.requests(400).build();
  const auto benign = core::run_legit_workload(legit);
  std::printf("Benign workload (400 mixed requests): cache hit rate %.2f, "
              "asymmetry %.1f, detector %s\n\n",
              benign.cache_hit_rate, benign.detector_stats.asymmetry,
              benign.detector_alarmed ? "ALARM (false positive!)" : "silent [OK]");

  // --- Monetary loss projection (section V-E) ------------------------------
  core::Table cost({"vendor", "origin B/req", "client B/req",
                    "victim cost, 10 req/s x 24 h"});
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const auto unit = core::measure_sbr(vendor, 25u << 20);
    const auto estimate = core::estimate_campaign_cost(
        core::price_plan(vendor), unit.client_response_bytes,
        unit.origin_response_bytes, 10.0, 24.0);
    cost.add_row({std::string{cdn::vendor_name(vendor)},
                  core::with_thousands(unit.origin_response_bytes),
                  core::with_thousands(unit.client_response_bytes),
                  "$" + core::fixed(estimate.total_usd, 0)});
  }
  std::printf("Projected victim cost of a laptop-scale SBR campaign "
              "(25 MB target; circa-2020 list prices)\n\n%s\n",
              cost.to_markdown().c_str());
  core::write_file("practicability_cost.csv", cost.to_csv());
  return 0;
}
