// Reproduces Table I: range forwarding behaviours vulnerable to the SBR
// attack, per vendor, discovered by the policy scanner.
//
// For each vendor the scanner sends the standard probe corpus at several
// file sizes (the size-conditional rows of Azure and Huawei Cloud need
// probes on both sides of their thresholds) and prints every probe whose
// forwarding behaviour lets a tiny client range pull the full entity from
// the origin.
#include <cstdio>
#include <map>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  core::Table table({"CDN", "Vulnerable Range Format", "File Size",
                     "Forwarded Range Format (1st send)", "2nd send"});

  std::size_t vulnerable_vendors = 0;
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const auto observations = core::scan_forwarding(vendor);
    bool vendor_vulnerable = false;
    // Deduplicate identical (probe, behaviour) rows across file sizes.
    std::map<std::string, std::string> seen;  // row key -> smallest size label
    for (const auto& obs : observations) {
      if (!obs.sbr_vulnerable) continue;
      vendor_vulnerable = true;
      const std::string key = obs.probe_label + "|" + obs.first_request.summary() +
                              "|" + obs.second_request.summary();
      const std::string size_label =
          std::to_string(obs.file_size / (1u << 20)) + "MB";
      if (auto it = seen.find(key); it != seen.end()) {
        it->second += "," + size_label;
        continue;
      }
      seen.emplace(key, size_label);
      table.add_row({std::string{cdn::vendor_name(vendor)}, obs.probe_label,
                     size_label, obs.first_request.summary(),
                     obs.second_request.summary()});
    }
    if (vendor_vulnerable) ++vulnerable_vendors;
  }

  std::printf("Table I -- range forwarding behaviours vulnerable to SBR\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("%zu of %zu vendors SBR-vulnerable (paper: 13 of 13)\n\n",
              vulnerable_vendors, cdn::kAllVendors.size());
  core::write_file("table1_sbr_forwarding.csv", table.to_csv());

  // The conditional (*) rows of Table I: flipping the customer-visible
  // option removes the vulnerability.
  core::Table hardened({"CDN", "configuration change", "still SBR-vulnerable?"});
  const auto vulnerable_with = [](cdn::Vendor vendor,
                                  const cdn::ProfileOptions& options) {
    for (const auto& obs : core::scan_forwarding(vendor, options)) {
      if (obs.sbr_vulnerable) return true;
    }
    return false;
  };
  {
    cdn::ProfileOptions options;
    options.origin_range_option_disabled = false;
    hardened.add_row({"Alibaba Cloud", "Range origin-pull option: enable",
                      vulnerable_with(cdn::Vendor::kAlibabaCloud, options)
                          ? "YES (unexpected)" : "no"});
    hardened.add_row({"Tencent Cloud", "Range origin-pull option: enable",
                      vulnerable_with(cdn::Vendor::kTencentCloud, options)
                          ? "YES (unexpected)" : "no"});
  }
  {
    cdn::ProfileOptions options;
    options.huawei_range_option_enabled = false;
    hardened.add_row({"Huawei Cloud", "Range option: disable",
                      vulnerable_with(cdn::Vendor::kHuaweiCloud, options)
                          ? "YES (unexpected)" : "no"});
  }
  {
    cdn::ProfileOptions options;
    options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
    hardened.add_row({"Cloudflare", "page rule: Bypass cache",
                      vulnerable_with(cdn::Vendor::kCloudflare, options)
                          ? "YES (unexpected)" : "no"});
  }
  std::printf("Hardened configurations (the (*) conditions of Table I):\n\n%s\n",
              hardened.to_markdown().c_str());
  return vulnerable_vendors == cdn::kAllVendors.size() ? 0 : 1;
}
