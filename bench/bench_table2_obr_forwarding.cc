// Reproduces Table II: multi-range forwarding behaviours vulnerable to the
// OBR attack (the FCDN side) -- vendors that pass an overlapping multi-range
// header to their upstream unchanged.
//
// Cloudflare's row is conditional on a Bypass page rule, so it is scanned in
// both modes.
#include <cstdio>
#include <set>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

bool scan_vendor(cdn::Vendor vendor, const cdn::ProfileOptions& options,
                 std::string_view note, core::Table& table) {
  const auto observations =
      core::scan_forwarding(vendor, options, {1u << 20});
  std::set<std::string> rows;
  for (const auto& obs : observations) {
    if (!obs.obr_forward_vulnerable) continue;
    rows.insert(obs.probe_label);
  }
  for (const auto& row : rows) {
    table.add_row({std::string{cdn::vendor_name(vendor)} + std::string{note},
                   row, "Unchanged"});
  }
  return !rows.empty();
}

}  // namespace

int main() {
  core::Table table({"CDN", "Vulnerable Range Format", "Forwarded Range Format"});

  std::set<std::string> vulnerable;
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    cdn::ProfileOptions options;
    if (vendor == cdn::Vendor::kCloudflare) {
      // Table II's Cloudflare row requires the Bypass page rule.
      if (scan_vendor(vendor, options, " (cacheable)", table)) {
        vulnerable.insert("Cloudflare (cacheable)");
      }
      options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
      if (scan_vendor(vendor, options, " (Bypass)", table)) {
        vulnerable.insert("Cloudflare (Bypass)");
      }
      continue;
    }
    if (scan_vendor(vendor, options, "", table)) {
      vulnerable.insert(std::string{cdn::vendor_name(vendor)});
    }
  }

  std::printf("Table II -- multi-range forwarding vulnerable to OBR (FCDN role)\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("OBR-FCDN-capable: ");
  for (const auto& v : vulnerable) std::printf("%s; ", v.c_str());
  std::printf("\n(paper: CDN77, CDNsun, Cloudflare (Bypass), StackPath)\n");
  core::write_file("table2_obr_forwarding.csv", table.to_csv());
  return vulnerable.size() == 4 ? 0 : 1;
}
