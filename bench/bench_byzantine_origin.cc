// Byzantine-origin chaos harness: randomized SBR/OBR cascades against an
// actively hostile origin, with the conformance layer swept off / lenient /
// strict.
//
// Each run drives a seeded stream of range requests (cache-busting keys,
// randomized range sets) through a CDN deployment whose origin is a
// MaliciousOrigin rotating through its full behaviour catalogue (lying
// Content-Length, out-of-bounds Content-Range, duplicate Content-Length
// poison tails, CL+TE smuggles, never-terminating chunked streams,
// origin-served OBR inflation...).  After every run three global invariants
// are checked:
//
//   I1  byte conservation per hop: the tracer's per-segment wire-span sums
//       equal each TrafficRecorder's totals (nothing counted twice, nothing
//       dropped);
//   I2  no cache poisoning: every cached entity is byte-identical to the
//       honest resource;
//   I3  bounded amplification (strict mode): bytes to the client never
//       exceed what the client's own ranges selected plus a fixed per-
//       response header/framing allowance -- whatever the origin inflates.
//
// Strict mode must satisfy all three for every seed; the process exits
// non-zero otherwise (the CI chaos gate).  Off mode is expected to violate
// I2/I3 -- the CSV rows quantify by how much, which is the ablation:
// byzantine_origin_ablation.csv compares off/lenient/strict per scenario and
// seed.  Everything is seeded; two runs emit byte-identical CSVs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "origin/malicious_origin.h"

using namespace rangeamp;

namespace {

constexpr std::uint64_t kFileSize = 1u << 20;  // 1 MiB resource
constexpr std::string_view kPath = "/asset.bin";
constexpr std::uint64_t kSeeds[] = {0xB0B1, 0xB0B2, 0xB0B3, 0xB0B4};
// Per-response allowance covering status line, headers, multipart framing
// and synthesized 502 pages when checking I3.
constexpr std::uint64_t kHeaderAllowance = 8 * 1024;

cdn::ConformancePolicy conformance(cdn::ConformanceMode mode) {
  cdn::ConformancePolicy cp;
  cp.mode = mode;
  // Budgets sized to the run: the honest resource (1 MiB) fits, the
  // malicious 8 MiB chunked stream and origin-served OBR inflations do not.
  cp.max_body_bytes = 4ull * 1024 * 1024;
  cp.max_multipart_assembly_bytes = 4ull * 1024 * 1024;
  return cp;
}

origin::MaliciousOriginConfig malicious_config(std::uint64_t seed) {
  origin::MaliciousOriginConfig cfg;
  cfg.seed = seed;
  // Include honest responses in the rotation so every run interleaves
  // legitimate traffic with attacks (the invariants must hold across both).
  cfg.rotation = {
      origin::MaliciousBehavior::kHonest,
      origin::MaliciousBehavior::kLyingContentLength,
      origin::MaliciousBehavior::kShortBody,
      origin::MaliciousBehavior::kOutOfBoundsContentRange,
      origin::MaliciousBehavior::kOverlappingExtraParts,
      origin::MaliciousBehavior::kBoundaryInjection,
      origin::MaliciousBehavior::kClTeSmuggle,
      origin::MaliciousBehavior::kDuplicateContentLength,
      origin::MaliciousBehavior::kUnboundedChunked,
      origin::MaliciousBehavior::kStatusRangeMismatch,
  };
  return cfg;
}

struct RunResult {
  int requests = 0;
  std::uint64_t requested_bytes = 0;  ///< Σ resolved client-range selections
  std::uint64_t origin_transfers = 0;
  std::uint64_t client_request_bytes = 0;
  std::uint64_t client_response_bytes = 0;
  std::uint64_t origin_response_bytes = 0;
  cdn::ValidationStats stats;  ///< summed over every node on the path
  int poisoned_entries = 0;
  std::vector<std::string> invariant_failures;

  /// Bytes delivered to the client per byte its ranges actually selected --
  /// the Byzantine origin's amplification of the client-facing leg.
  double byzantine_af() const {
    return requested_bytes == 0
               ? 0.0
               : static_cast<double>(client_response_bytes) /
                     static_cast<double>(requested_bytes);
  }
};

void accumulate(cdn::ValidationStats& into, const cdn::ValidationStats& from) {
  into.upstream_responses_validated += from.upstream_responses_validated;
  into.violations += from.violations;
  into.rejected_502 += from.rejected_502;
  into.passed_uncached += from.passed_uncached;
  into.store_suppressed += from.store_suppressed;
  into.budget_overflows += from.budget_overflows;
  into.assembly_overflows += from.assembly_overflows;
}

// I1: the tracer's per-segment wire-span byte sums must reproduce each
// recorder's totals exactly.
void check_byte_conservation(const obs::Tracer& tracer,
                             const std::vector<const net::TrafficRecorder*>& recorders,
                             RunResult& out) {
  for (const net::TrafficRecorder* rec : recorders) {
    const net::TrafficTotals traced = tracer.segment_totals(rec->segment());
    if (traced.request_bytes != rec->totals().request_bytes ||
        traced.response_bytes != rec->totals().response_bytes) {
      out.invariant_failures.push_back(
          "I1 byte conservation broken on " + rec->name() + ": traced " +
          std::to_string(traced.response_bytes) + " vs recorded " +
          std::to_string(rec->totals().response_bytes) + " response bytes");
    }
  }
}

// I2: every cached entity must be byte-identical to the honest resource.
// Marker entries (negative-cache sentinels, Vary markers) carry no entity.
int poisoned_entries(const cdn::Cache& cache, const std::string& honest) {
  int poisoned = 0;
  cache.for_each([&](const std::string&, const cdn::CachedEntity& entry) {
    if (entry.content_type == "#negative") return;
    if (entry.entity.empty() && !entry.vary.empty()) return;  // Vary marker
    if (entry.entity.size() != honest.size() ||
        entry.entity.materialize() != honest) {
      ++poisoned;
    }
  });
  return poisoned;
}

// One randomized SBR run: client -> Akamai-profile CDN (Deletion policy)
// -> MaliciousOrigin.  Small randomized single ranges, cache-busting keys.
RunResult run_sbr(cdn::ConformanceMode mode, std::uint64_t seed) {
  origin::MaliciousOrigin mal(malicious_config(seed));
  mal.resources().add_synthetic(std::string{kPath}, kFileSize);

  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.conformance = conformance(mode);
  cdn::CdnNode cdn(std::move(profile), mal, "cdn-origin");

  net::TrafficRecorder client_traffic("client-cdn");
  net::Wire client_wire(client_traffic, cdn);

  obs::Tracer tracer;
  client_wire.set_tracer(&tracer);
  cdn.set_tracer(&tracer);

  http::Rng rng(seed * 0x9e3779b9u + 7);
  RunResult out;
  out.requests = 48;
  for (int i = 0; i < out.requests; ++i) {
    auto request = http::make_get(std::string{core::kDefaultHost},
                                  std::string{kPath} + "?cb=" + std::to_string(i));
    // Randomized small range (the SBR shape); occasionally none at all.
    if (rng.below(8) != 0) {
      const std::uint64_t first = rng.below(kFileSize);
      const std::uint64_t len = 1 + rng.below(1024);
      const std::uint64_t last = std::min(kFileSize - 1, first + len - 1);
      request.headers.add("Range", "bytes=" + std::to_string(first) + "-" +
                                       std::to_string(last));
      out.requested_bytes += last - first + 1;
    } else {
      out.requested_bytes += kFileSize;
    }
    client_wire.transfer(request);
  }

  out.origin_transfers = cdn.upstream_traffic().exchange_count();
  out.client_request_bytes = client_traffic.request_bytes();
  out.client_response_bytes = client_traffic.response_bytes();
  out.origin_response_bytes = cdn.upstream_traffic().response_bytes();
  out.stats = cdn.validation_stats();

  check_byte_conservation(tracer, {&client_traffic, &cdn.upstream_traffic()},
                          out);
  const std::string honest =
      mal.resources().find(kPath)->entity.materialize();
  out.poisoned_entries = poisoned_entries(cdn.cache(), honest);
  return out;
}

// One randomized OBR cascade run: client -> Cloudflare-bypass FCDN
// (Laziness) -> StackPath BCDN (Deletion + overlapping multipart honored)
// -> MaliciousOrigin.  Overlapping multi-range sets, cache-busting keys.
RunResult run_obr(cdn::ConformanceMode mode, std::uint64_t seed) {
  origin::MaliciousOrigin mal(malicious_config(seed));
  mal.resources().add_synthetic(std::string{kPath}, kFileSize);

  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  cdn::VendorProfile fcdn_profile =
      cdn::make_profile(cdn::Vendor::kCloudflare, bypass);
  cdn::VendorProfile bcdn_profile = cdn::make_profile(cdn::Vendor::kStackPath);
  fcdn_profile.traits.conformance = conformance(mode);
  bcdn_profile.traits.conformance = conformance(mode);

  cdn::CdnNode bcdn(std::move(bcdn_profile), mal, "bcdn-origin");
  cdn::CdnNode fcdn(std::move(fcdn_profile), bcdn, "fcdn-bcdn");

  net::TrafficRecorder client_traffic("client-fcdn");
  net::Wire client_wire(client_traffic, fcdn);

  obs::Tracer tracer;
  client_wire.set_tracer(&tracer);
  fcdn.set_tracer(&tracer);
  bcdn.set_tracer(&tracer);

  http::Rng rng(seed * 0x51eded1ull + 13);
  RunResult out;
  out.requests = 32;
  for (int i = 0; i < out.requests; ++i) {
    auto request = http::make_get(std::string{core::kDefaultHost},
                                  std::string{kPath} + "?cb=" + std::to_string(i));
    // n overlapping ranges, each covering most of the entity from a random
    // start -- the OBR shape of section IV-C.
    const std::size_t n = 2 + rng.below(7);
    std::string ranges = "bytes=";
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t first = rng.below(kFileSize / 4);
      if (k != 0) ranges += ",";
      ranges += std::to_string(first) + "-";
      out.requested_bytes += kFileSize - first;
    }
    request.headers.add("Range", ranges);
    client_wire.transfer(request);
  }

  out.origin_transfers = bcdn.upstream_traffic().exchange_count();
  out.client_request_bytes = client_traffic.request_bytes();
  out.client_response_bytes = client_traffic.response_bytes();
  out.origin_response_bytes = bcdn.upstream_traffic().response_bytes();
  out.stats = fcdn.validation_stats();
  accumulate(out.stats, bcdn.validation_stats());

  check_byte_conservation(
      tracer, {&client_traffic, &fcdn.upstream_traffic(), &bcdn.upstream_traffic()},
      out);
  const std::string honest =
      mal.resources().find(kPath)->entity.materialize();
  out.poisoned_entries = poisoned_entries(fcdn.cache(), honest) +
                         poisoned_entries(bcdn.cache(), honest);
  return out;
}

void check_strict_invariants(const std::string& scenario, std::uint64_t seed,
                             RunResult& r) {
  // I2 is absolute under strict conformance.
  if (r.poisoned_entries != 0) {
    r.invariant_failures.push_back("I2 cache poisoning under strict mode: " +
                                   std::to_string(r.poisoned_entries) +
                                   " entries");
  }
  // I3: client bytes bounded by what the client's ranges selected plus the
  // fixed per-response allowance, no matter what the origin invented.
  const std::uint64_t bound =
      r.requested_bytes +
      static_cast<std::uint64_t>(r.requests) * kHeaderAllowance;
  if (r.client_response_bytes > bound) {
    r.invariant_failures.push_back(
        "I3 amplification bound broken: " +
        std::to_string(r.client_response_bytes) + " client bytes > bound " +
        std::to_string(bound));
  }
  for (const auto& failure : r.invariant_failures) {
    std::fprintf(stderr, "INVARIANT VIOLATION [%s seed=%llu strict]: %s\n",
                 scenario.c_str(), static_cast<unsigned long long>(seed),
                 failure.c_str());
  }
}

void add_row(core::Table& table, const std::string& scenario,
             cdn::ConformanceMode mode, std::uint64_t seed,
             const RunResult& r) {
  table.add_row({scenario, std::string{cdn::conformance_mode_name(mode)},
                 std::to_string(seed), std::to_string(r.requests),
                 std::to_string(r.requested_bytes),
                 std::to_string(r.origin_transfers),
                 std::to_string(r.client_request_bytes),
                 std::to_string(r.client_response_bytes),
                 std::to_string(r.origin_response_bytes),
                 core::fixed(r.byzantine_af(), 3),
                 std::to_string(r.stats.violations),
                 std::to_string(r.stats.rejected_502),
                 std::to_string(r.stats.passed_uncached),
                 std::to_string(r.stats.store_suppressed),
                 std::to_string(r.stats.budget_overflows +
                                r.stats.assembly_overflows),
                 std::to_string(r.poisoned_entries),
                 std::to_string(r.invariant_failures.size())});
}

}  // namespace

int main() {
  core::Table table({"scenario", "conformance", "seed", "requests",
                     "requested_bytes", "origin_transfers",
                     "client_request_bytes", "client_response_bytes",
                     "origin_response_bytes", "byzantine_af", "violations",
                     "rejected_502", "passed_uncached", "store_suppressed",
                     "budget_overflows", "poisoned_entries",
                     "invariant_failures"});

  bool strict_clean = true;
  for (const std::string scenario : {"sbr-single", "obr-cascade"}) {
    for (const cdn::ConformanceMode mode :
         {cdn::ConformanceMode::kOff, cdn::ConformanceMode::kLenient,
          cdn::ConformanceMode::kStrict}) {
      for (const std::uint64_t seed : kSeeds) {
        RunResult r = scenario == "sbr-single" ? run_sbr(mode, seed)
                                               : run_obr(mode, seed);
        if (mode == cdn::ConformanceMode::kStrict) {
          check_strict_invariants(scenario, seed, r);
        } else {
          // I1 (byte conservation) must hold in every mode.
          for (const auto& failure : r.invariant_failures) {
            std::fprintf(stderr, "INVARIANT VIOLATION [%s seed=%llu %s]: %s\n",
                         scenario.c_str(),
                         static_cast<unsigned long long>(seed),
                         std::string{cdn::conformance_mode_name(mode)}.c_str(),
                         failure.c_str());
          }
        }
        if (!r.invariant_failures.empty()) strict_clean = false;
        add_row(table, scenario, mode, seed, r);
      }
    }
  }

  std::printf("# Byzantine-origin chaos harness\n\n%s\n",
              table.to_markdown().c_str());
  if (!core::write_file("byzantine_origin_ablation.csv", table.to_csv())) {
    std::fprintf(stderr, "failed to write byzantine_origin_ablation.csv\n");
    return EXIT_FAILURE;
  }
  std::printf("wrote byzantine_origin_ablation.csv (%zu rows)\n",
              table.row_count());
  if (!strict_clean) {
    std::fprintf(stderr,
                 "strict-mode invariant violations detected -- see above\n");
    return EXIT_FAILURE;
  }
  std::printf("strict mode: all invariants held across %zu seeds\n",
              std::size(kSeeds));
  return EXIT_SUCCESS;
}
