// Overload-control chaos grid: SBR/OBR deployments against slow and flaky
// origins, with the overload subsystem (watermarks + deadlines + retry
// budgets) swept off / on.
//
// Each run drives a seeded stream of cache-busting range requests through a
// CDN deployment whose origin leg misbehaves on a deterministic schedule:
//
//   slow   every upstream transfer carries 8 s of injected latency -- the
//          stuck-origin shape of the node-exhaustion experiment;
//   flaky  seeded per-transfer coin flips between connection resets and
//          upstream 503s -- the retry-storm shape of docs/fault-model.md.
//
// Four invariants are checked per run; the process exits non-zero on any
// breach (the CI overload gate):
//
//   I1  shed is cheap: with the knobs on, every upstream wire exchange is an
//       accounted attempt (first attempts + granted retries, per node) --
//       watermark-shed and deadline-refused requests never touch the wire;
//   I2  expired legs never store: in slow mode with deadlines on, no origin
//       response byte crosses the wire and every cache stays empty;
//   I3  retries within budget: per node, granted retries never exceed
//       max(min_retries, floor(ratio * first_attempts));
//   I4  off is byte-identical: the knobs-off run replays byte-identically
//       (the committed CSV is further drift-gated by reproduce.sh).
//
// A DES coda projects the deadline knob onto the OBR node-exhaustion model
// (sim::ShieldedLoadConfig.deadline_seconds): cancelled flows must cut the
// origin uplink's pinned-resource time against the unprotected baseline.
// Everything is seeded and clock-driven; two runs emit byte-identical CSVs
// (overload_ablation.csv).
//
// RANGEAMP_METRICS=1 additionally exports the accumulated overload counter
// catalogue as overload_metrics.prom (validated by scripts/check_metrics.py
// in CI).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "sim/des.h"

using namespace rangeamp;

namespace {

constexpr std::uint64_t kFileSize = 1u << 20;  // 1 MiB resource
constexpr std::string_view kPath = "/asset.bin";
constexpr std::uint64_t kSeeds[] = {0x0AD1, 0x0AD2, 0x0AD3, 0x0AD4};
constexpr double kSlowLatencySeconds = 8.0;
constexpr double kRequestSpacingSeconds = 0.05;

cdn::OverloadPolicy storm_policy() {
  cdn::OverloadPolicy policy;
  policy.watermarks.enabled = true;
  policy.watermarks.window_seconds = 1.0;
  policy.watermarks.queue_low = 8;
  policy.watermarks.queue_high = 14;
  policy.watermarks.retry_after_seconds = 15;
  policy.deadline.enabled = true;
  policy.deadline.default_budget_seconds = 5.0;
  policy.deadline.per_hop_min_seconds = 0.05;
  policy.deadline.propagate = true;
  policy.retry_budget.enabled = true;
  policy.retry_budget.ratio = 0.25;
  policy.retry_budget.min_retries = 3;
  policy.retry_budget.window_seconds = 1e9;  // covers the whole run
  policy.retry_budget.count_chain_attempts = true;
  return policy;
}

void schedule_faults(net::FaultInjector& faults, const std::string& origin_mode,
                     std::uint64_t seed) {
  if (origin_mode == "slow") {
    faults.fail_always(net::FaultSpec::latency(kSlowLatencySeconds));
  } else {  // flaky: seeded mix of resets and upstream 503s
    faults.fail_rate(0.3, seed * 2654435761u + 1, net::FaultSpec::reset());
    faults.fail_rate(0.3, seed * 0x9e3779b9u + 2,
                     net::FaultSpec::status_code(503));
  }
}

struct RunResult {
  int requests = 0;
  std::uint64_t upstream_attempts = 0;  ///< origin-leg wire exchanges
  std::uint64_t first_attempts = 0;     ///< summed over nodes
  std::uint64_t retries_granted = 0;
  std::uint64_t retries_denied = 0;
  std::uint64_t shed = 0;      ///< watermark 503s (high + stale-less band)
  std::uint64_t degraded = 0;  ///< non-admit watermark verdicts
  std::uint64_t deadline_cancelled = 0;  ///< ingress refusals + cut legs
  std::uint64_t chain_attempts = 0;
  std::uint64_t client_request_bytes = 0;
  std::uint64_t client_response_bytes = 0;
  std::uint64_t origin_request_bytes = 0;
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t cancelled_origin_bytes = 0;  ///< DES rows only
  std::uint64_t cached_entries = 0;
  std::vector<std::string> invariant_failures;
};

std::uint64_t real_entries(const cdn::Cache& cache) {
  std::uint64_t n = 0;
  cache.for_each([&](const std::string&, const cdn::CachedEntity& entry) {
    if (entry.content_type == "#negative") return;             // negative cache
    if (entry.entity.empty() && !entry.vary.empty()) return;   // Vary marker
    ++n;
  });
  return n;
}

void collect_node(const std::string& name, cdn::CdnNode& node, bool knobs_on,
                  RunResult& out) {
  const cdn::OverloadStats& stats = node.overload_stats();
  out.first_attempts += stats.attempts.first_attempts;
  out.retries_granted += stats.attempts.retries;
  out.retries_denied += stats.retries_denied;
  out.shed += stats.shed_total();
  out.degraded += stats.degraded + stats.shed_high_watermark;
  out.deadline_cancelled +=
      stats.deadline_rejected_ingress + stats.deadline_cancelled_legs;
  out.chain_attempts += stats.chain_attempts;
  out.cached_entries += real_entries(node.cache());

  if (!knobs_on) return;
  // I1: every wire exchange on this node's upstream segment is an accounted
  // attempt -- shed and deadline-refused requests never touched the wire.
  const std::uint64_t exchanges = node.upstream_traffic().exchange_count();
  const std::uint64_t accounted =
      stats.attempts.first_attempts + stats.attempts.retries;
  if (exchanges != accounted) {
    out.invariant_failures.push_back(
        "I1 unaccounted wire exchanges at " + name + ": " +
        std::to_string(exchanges) + " exchanges vs " +
        std::to_string(accounted) + " accounted attempts");
  }
  // I3: granted retries within the budget the policy advertises.  (Chain
  // attempts consume the same window, so they only shrink what can be
  // granted -- the bound below stays valid with them in flight.)
  const cdn::RetryBudgetPolicy& rb = node.overload().policy().retry_budget;
  const auto allowed = static_cast<std::uint64_t>(std::max(
      rb.min_retries,
      static_cast<int>(rb.ratio *
                       static_cast<double>(stats.attempts.first_attempts))));
  if (stats.attempts.retries > allowed) {
    out.invariant_failures.push_back(
        "I3 retry budget exceeded at " + name + ": " +
        std::to_string(stats.attempts.retries) + " granted > " +
        std::to_string(allowed) + " allowed");
  }
}

// One seeded SBR run: client -> Akamai-profile CDN -> faulted origin leg.
RunResult run_sbr(const std::string& origin_mode, bool knobs_on,
                  std::uint64_t seed, obs::MetricsRegistry* metrics) {
  origin::OriginServer origin;
  origin.resources().add_synthetic(std::string{kPath}, kFileSize);

  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.resilience.max_retries = 3;
  if (knobs_on) profile.traits.overload = storm_policy();
  cdn::CdnNode cdn(std::move(profile), origin, "cdn-origin");
  if (metrics) cdn.set_metrics(metrics);

  double now = 0;
  cdn.set_clock([&now] { return now; });
  net::FaultInjector faults;
  schedule_faults(faults, origin_mode, seed);
  cdn.set_upstream_fault_injector(&faults);

  net::TrafficRecorder client_traffic("client-cdn");
  net::Wire client_wire(client_traffic, cdn);

  http::Rng rng(seed * 0x51eded1ull + 5);
  RunResult out;
  out.requests = 48;
  for (int i = 0; i < out.requests; ++i) {
    now = i * kRequestSpacingSeconds;
    auto request =
        http::make_get(std::string{core::kDefaultHost},
                       std::string{kPath} + "?cb=" + std::to_string(i));
    const std::uint64_t first = rng.below(kFileSize);
    const std::uint64_t last = std::min(kFileSize - 1, first + rng.below(1024));
    request.headers.add("Range", "bytes=" + std::to_string(first) + "-" +
                                     std::to_string(last));
    client_wire.transfer(request);
  }

  out.upstream_attempts = cdn.upstream_traffic().exchange_count();
  out.client_request_bytes = client_traffic.request_bytes();
  out.client_response_bytes = client_traffic.response_bytes();
  out.origin_request_bytes = cdn.upstream_traffic().request_bytes();
  out.origin_response_bytes = cdn.upstream_traffic().response_bytes();
  collect_node("cdn", cdn, knobs_on, out);
  return out;
}

// One seeded OBR cascade run: client -> Cloudflare-bypass FCDN -> StackPath
// BCDN -> faulted origin leg.  With the knobs on, both hops run the policy,
// so FCDN retries reach the BCDN with attempt-count headers and charge its
// budget (the cross-hop half of the subsystem).
RunResult run_obr(const std::string& origin_mode, bool knobs_on,
                  std::uint64_t seed, obs::MetricsRegistry* metrics) {
  origin::OriginServer origin;
  origin.resources().add_synthetic(std::string{kPath}, kFileSize);

  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  cdn::VendorProfile fcdn_profile =
      cdn::make_profile(cdn::Vendor::kCloudflare, bypass);
  cdn::VendorProfile bcdn_profile = cdn::make_profile(cdn::Vendor::kStackPath);
  fcdn_profile.traits.resilience.max_retries = 2;
  bcdn_profile.traits.resilience.max_retries = 3;
  if (knobs_on) {
    fcdn_profile.traits.overload = storm_policy();
    bcdn_profile.traits.overload = storm_policy();
  }
  cdn::CdnNode bcdn(std::move(bcdn_profile), origin, "bcdn-origin");
  cdn::CdnNode fcdn(std::move(fcdn_profile), bcdn, "fcdn-bcdn");
  if (metrics) {
    fcdn.set_metrics(metrics);
    bcdn.set_metrics(metrics);
  }

  double now = 0;
  fcdn.set_clock([&now] { return now; });
  bcdn.set_clock([&now] { return now; });
  net::FaultInjector faults;
  schedule_faults(faults, origin_mode, seed);
  bcdn.set_upstream_fault_injector(&faults);

  net::TrafficRecorder client_traffic("client-fcdn");
  net::Wire client_wire(client_traffic, fcdn);

  http::Rng rng(seed * 0x9e3779b9u + 11);
  RunResult out;
  out.requests = 32;
  for (int i = 0; i < out.requests; ++i) {
    now = i * kRequestSpacingSeconds;
    auto request =
        http::make_get(std::string{core::kDefaultHost},
                       std::string{kPath} + "?cb=" + std::to_string(i));
    const std::size_t n = 2 + rng.below(5);
    std::string ranges = "bytes=";
    for (std::size_t k = 0; k < n; ++k) {
      if (k != 0) ranges += ",";
      ranges += std::to_string(rng.below(kFileSize / 4)) + "-";
    }
    request.headers.add("Range", ranges);
    client_wire.transfer(request);
  }

  out.upstream_attempts = bcdn.upstream_traffic().exchange_count();
  out.client_request_bytes = client_traffic.request_bytes();
  out.client_response_bytes = client_traffic.response_bytes();
  out.origin_request_bytes = bcdn.upstream_traffic().request_bytes();
  out.origin_response_bytes = bcdn.upstream_traffic().response_bytes();
  collect_node("fcdn", fcdn, knobs_on, out);
  collect_node("bcdn", bcdn, knobs_on, out);
  return out;
}

void check_run_invariants(const std::string& scenario,
                          const std::string& origin_mode, bool knobs_on,
                          std::uint64_t seed, RunResult& r) {
  // I2: slow origin + deadlines on -- every leg is cut at the budget before
  // the response crosses, and a deadline-expired leg never stores.
  if (knobs_on && origin_mode == "slow") {
    if (r.origin_response_bytes != 0) {
      r.invariant_failures.push_back(
          "I2 origin response bytes crossed a deadline-bound leg: " +
          std::to_string(r.origin_response_bytes));
    }
    if (r.cached_entries != 0) {
      r.invariant_failures.push_back(
          "I2 deadline-expired fetches were stored: " +
          std::to_string(r.cached_entries) + " entries");
    }
  }
  for (const auto& failure : r.invariant_failures) {
    std::fprintf(stderr, "INVARIANT VIOLATION [%s %s %s seed=%llu]: %s\n",
                 scenario.c_str(), origin_mode.c_str(),
                 knobs_on ? "on" : "off",
                 static_cast<unsigned long long>(seed), failure.c_str());
  }
}

void add_row(core::Table& table, const std::string& scenario,
             const std::string& origin_mode, bool knobs_on, std::uint64_t seed,
             const RunResult& r, double busy_seconds = 0) {
  table.add_row(
      {scenario, origin_mode, knobs_on ? "on" : "off", std::to_string(seed),
       std::to_string(r.requests), std::to_string(r.upstream_attempts),
       std::to_string(r.first_attempts), std::to_string(r.retries_granted),
       std::to_string(r.retries_denied), std::to_string(r.shed),
       std::to_string(r.degraded), std::to_string(r.deadline_cancelled),
       std::to_string(r.chain_attempts),
       std::to_string(r.client_request_bytes),
       std::to_string(r.client_response_bytes),
       std::to_string(r.origin_request_bytes),
       std::to_string(r.origin_response_bytes),
       std::to_string(r.cancelled_origin_bytes),
       std::to_string(r.cached_entries), core::fixed(busy_seconds, 3)});
}

// DES coda: the deadline knob projected onto the OBR node-exhaustion model.
// 20 x 10 MiB fetches per second against a 1000 Mbps uplink for 15 s -- a
// backlog the unprotected origin drains long after the attack stops.
sim::ShieldedLoadResult run_exhaustion(double deadline_seconds) {
  sim::ShieldedLoadConfig config;
  config.base.requests_per_second = 20;
  config.base.origin_response_bytes = 10u << 20;
  config.base.client_response_bytes = 822;
  config.base.origin_uplink_mbps = 1000.0;
  config.base.duration_s = 15.0;
  config.base.drain_s = 45.0;
  config.shed_response_bytes = 500;
  config.deadline_seconds = deadline_seconds;
  return sim::simulate_attack_load_shielded(config);
}

}  // namespace

int main() {
  core::Table table(
      {"scenario", "origin_mode", "overload", "seed", "requests",
       "upstream_attempts", "first_attempts", "retries_granted",
       "retries_denied", "shed", "degraded", "deadline_cancelled",
       "chain_attempts", "client_request_bytes", "client_response_bytes",
       "origin_request_bytes", "origin_response_bytes",
       "cancelled_origin_bytes", "cached_entries", "busy_seconds"});

  obs::MetricsRegistry metrics;
  bool clean = true;
  for (const std::string scenario : {"sbr-single", "obr-cascade"}) {
    for (const std::string origin_mode : {"slow", "flaky"}) {
      for (const bool knobs_on : {false, true}) {
        for (const std::uint64_t seed : kSeeds) {
          RunResult r = scenario == "sbr-single"
                            ? run_sbr(origin_mode, knobs_on, seed, &metrics)
                            : run_obr(origin_mode, knobs_on, seed, &metrics);
          if (!knobs_on) {
            // I4: the knobs-off world is deterministic and untouched by the
            // subsystem -- an identical replay must be byte-identical.
            const RunResult again =
                scenario == "sbr-single"
                    ? run_sbr(origin_mode, knobs_on, seed, nullptr)
                    : run_obr(origin_mode, knobs_on, seed, nullptr);
            if (again.client_request_bytes != r.client_request_bytes ||
                again.client_response_bytes != r.client_response_bytes ||
                again.origin_response_bytes != r.origin_response_bytes ||
                again.upstream_attempts != r.upstream_attempts) {
              r.invariant_failures.push_back("I4 knobs-off replay diverged");
            }
          }
          check_run_invariants(scenario, origin_mode, knobs_on, seed, r);
          if (!r.invariant_failures.empty()) clean = false;
          add_row(table, scenario, origin_mode, knobs_on, seed, r);
        }
      }
    }
  }

  // Node-exhaustion coda: pinned-resource time with and without deadlines.
  const sim::ShieldedLoadResult baseline = run_exhaustion(0);
  const sim::ShieldedLoadResult guarded = run_exhaustion(2.0);
  {
    RunResult base_row;
    base_row.requests = 20 * 15;
    base_row.upstream_attempts = baseline.origin_fetches;
    base_row.shed = baseline.shed;
    base_row.cancelled_origin_bytes =
        static_cast<std::uint64_t>(baseline.cancelled_origin_bytes);
    add_row(table, "des-exhaustion", "slow", false, 0, base_row,
            baseline.busy_seconds(1000.0));

    RunResult guard_row;
    guard_row.requests = 20 * 15;
    guard_row.upstream_attempts = guarded.origin_fetches;
    guard_row.shed = guarded.shed;
    guard_row.deadline_cancelled = guarded.deadline_cancelled;
    guard_row.cancelled_origin_bytes =
        static_cast<std::uint64_t>(guarded.cancelled_origin_bytes);
    if (guarded.deadline_cancelled == 0 ||
        guarded.busy_seconds(1000.0) >= baseline.busy_seconds(1000.0)) {
      guard_row.invariant_failures.push_back(
          "DES deadline failed to cut pinned-resource time");
      std::fprintf(stderr,
                   "INVARIANT VIOLATION [des-exhaustion]: busy %0.3f s with "
                   "deadlines vs %0.3f s baseline\n",
                   guarded.busy_seconds(1000.0), baseline.busy_seconds(1000.0));
      clean = false;
    }
    add_row(table, "des-exhaustion", "slow", true, 0, guard_row,
            guarded.busy_seconds(1000.0));
  }

  std::printf("# Overload-control storm grid\n\n%s\n",
              table.to_markdown().c_str());
  std::printf(
      "node exhaustion: busy %0.3f s -> %0.3f s with 2 s deadlines "
      "(%llu flows cancelled)\n",
      baseline.busy_seconds(1000.0), guarded.busy_seconds(1000.0),
      static_cast<unsigned long long>(guarded.deadline_cancelled));

  if (!core::write_file("overload_ablation.csv", table.to_csv())) {
    std::fprintf(stderr, "failed to write overload_ablation.csv\n");
    return EXIT_FAILURE;
  }
  std::printf("wrote overload_ablation.csv (%zu rows)\n", table.row_count());

  if (const char* env = std::getenv("RANGEAMP_METRICS");
      env && std::string_view{env} == "1") {
    if (!core::write_file("overload_metrics.prom", metrics.to_prometheus())) {
      std::fprintf(stderr, "failed to write overload_metrics.prom\n");
      return EXIT_FAILURE;
    }
    std::printf("wrote overload_metrics.prom (%zu metrics)\n",
                metrics.metric_count());
  }

  if (!clean) {
    std::fprintf(stderr,
                 "overload invariant violations detected -- see above\n");
    return EXIT_FAILURE;
  }
  std::printf("all overload invariants held across %zu seeds\n",
              std::size(kSeeds));
  return EXIT_SUCCESS;
}
