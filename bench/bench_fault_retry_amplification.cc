// Retry amplification under origin faults (the robustness companion to the
// paper's Fig 6): what happens to the SBR amplification factor when the
// cdn-origin segment is *unreliable* and the CDN spends a retry budget on
// it.
//
// The paper measures AF = origin response bytes / client response bytes with
// every hop healthy.  Under a Deletion policy each cache miss already costs
// a full-entity origin fetch; when that fetch dies near the end of the
// entity and the CDN naively retries, the origin pays the full entity
// *per attempt* while the attacker's cost is unchanged -- the effective AF
// scales with (1 + retries) at fault rate 1.  Three experiments:
//
//   1. rotation-miss grid: cache-busting SBR campaign x {fault rate} x
//      {retry budget} against a Deletion vendor, truncate-late wire faults
//      (the origin dies one byte short of finishing the entity);
//   2. degradation policies: the same hostile cell (p=1) under
//      synthesize-error / serve-stale / negative-cache, showing that
//      query rotation starves both caches so no degradation policy helps
//      the *miss* path -- and the stale-revalidation scenario, where
//      serve-stale (RFC 5861 stale-if-error) keeps AF flat while the naive
//      policy re-fetches the full entity after every failed revalidation;
//   3. mitigation ablation under faults: section VI-C's mitigations re-run
//      with the same fault schedule -- range-forwarding mitigations
//      (Laziness, +8KB Expansion, slice) keep upstream fetches so small the
//      truncate-late fault never fires, so they also kill the retry
//      amplification vector.
//
// Everything is seeded and scheduled: two runs of this binary emit
// byte-identical CSVs.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

constexpr std::uint64_t kFileSize = 1u << 20;  // 1 MiB entity
constexpr int kRequests = 200;                 // campaign length per cell
constexpr std::uint64_t kSeed = 0x5eedF417;    // fault-schedule seed

struct CampaignResult {
  std::uint64_t client_response_bytes = 0;
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t origin_transfers = 0;  ///< upstream attempts (incl. retries)
  std::uint64_t faults = 0;
  int ok_responses = 0;       ///< 2xx/3xx to the client
  int degraded_responses = 0; ///< 5xx to the client
  double af() const {
    return client_response_bytes == 0
               ? 0.0
               : static_cast<double>(origin_response_bytes) /
                     static_cast<double>(client_response_bytes);
  }
};

// A cache-busting SBR campaign (rotated query string, bytes=0-0) against one
// vendor profile with a truncate-late fault schedule of rate `p` on the
// cdn-origin segment.
CampaignResult run_rotation_campaign(cdn::VendorProfile profile, double p) {
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/payload.bin", kFileSize);

  net::FaultInjector faults;
  if (p > 0) {
    faults.fail_rate(p, kSeed, net::FaultSpec::truncate(kFileSize - 1));
  }
  bed.set_origin_fault_injector(&faults);

  CampaignResult out;
  for (int i = 0; i < kRequests; ++i) {
    auto request = http::make_get(std::string{core::kDefaultHost},
                                  "/payload.bin?cb=" + std::to_string(i));
    request.headers.add("Range", "bytes=0-0");
    const auto response = bed.send(request);
    if (response.status >= 500) {
      ++out.degraded_responses;
    } else {
      ++out.ok_responses;
    }
  }
  out.client_response_bytes = bed.client_traffic().response_bytes();
  out.origin_response_bytes = bed.origin_traffic().response_bytes();
  out.origin_transfers = faults.transfers_seen();
  out.faults = faults.faults_injected();
  return out;
}

cdn::VendorProfile deletion_profile(int retries,
                                    cdn::DegradationPolicy degradation) {
  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.resilience.max_retries = retries;
  profile.traits.resilience.degradation = degradation;
  return profile;
}

// Stale-revalidation scenario: the attacker hammers a *cached but stale*
// URL while the origin's app layer answers every conditional revalidation
// with 503 (the origin fault injector gates on If-None-Match, so plain
// refetches still succeed).  A serve-stale vendor absorbs each failure with
// the stale copy; a synthesize-error vendor burns its retry budget on 503s
// and then re-fetches the full entity on the vendor miss path.
CampaignResult run_stale_revalidation_campaign(int retries,
                                               cdn::DegradationPolicy degradation) {
  constexpr double kTtl = 60.0;
  cdn::VendorProfile profile = deletion_profile(retries, degradation);
  profile.traits.cache_ttl_seconds = kTtl;

  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/payload.bin", kFileSize);

  double now = 0.0;
  bed.cdn().set_clock([&now] { return now; });

  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::status_code(503),
                     [](const http::Request& r) {
                       return r.headers.get("If-None-Match").has_value();
                     });
  bed.origin().config().fault_injector = &faults;

  // Prime the cache at t=0 (healthy fetch), then drop the priming exchange
  // from the books so only the attack traffic is measured.
  auto prime = http::make_get(std::string{core::kDefaultHost}, "/payload.bin");
  bed.send(prime);
  bed.client_traffic().reset();
  bed.origin_traffic().reset();
  faults.reset_counters();

  CampaignResult out;
  for (int i = 0; i < kRequests; ++i) {
    now = (i + 1) * (kTtl + 1);  // every request sees the entry stale again
    auto request = http::make_get(std::string{core::kDefaultHost}, "/payload.bin");
    request.headers.add("Range", "bytes=0-0");
    const auto response = bed.send(request);
    if (response.status >= 500) {
      ++out.degraded_responses;
    } else {
      ++out.ok_responses;
    }
  }
  out.client_response_bytes = bed.client_traffic().response_bytes();
  out.origin_response_bytes = bed.origin_traffic().response_bytes();
  out.origin_transfers = faults.transfers_seen();
  out.faults = faults.faults_injected();
  return out;
}

std::string cell(const CampaignResult& r) { return core::fixed(r.af(), 1); }

void add_result_row(core::Table& table, const std::string& scenario,
                    const std::string& policy, double p, int retries,
                    const CampaignResult& r) {
  table.add_row({scenario, policy, core::fixed(p, 2), std::to_string(retries),
                 std::to_string(kRequests), std::to_string(r.origin_transfers),
                 std::to_string(r.faults),
                 std::to_string(r.client_response_bytes),
                 std::to_string(r.origin_response_bytes),
                 core::fixed(r.af(), 1), std::to_string(r.ok_responses),
                 std::to_string(r.degraded_responses)});
}

}  // namespace

int main() {
  core::Table table({"scenario", "degradation", "fault_rate", "retries",
                     "requests", "origin_transfers", "faults_injected",
                     "client_response_bytes", "origin_response_bytes", "af",
                     "ok_responses", "degraded_responses"});

  // ---- 1. rotation-miss grid: fault rate x retry budget -----------------
  core::Table grid({"fault rate \\ retries", "R=0", "R=1", "R=2", "R=3"});
  for (const double p : {0.0, 0.25, 0.5, 1.0}) {
    std::vector<std::string> row{core::fixed(p, 2)};
    for (const int retries : {0, 1, 2, 3}) {
      const auto r = run_rotation_campaign(
          deletion_profile(retries, cdn::DegradationPolicy::kSynthesizeError), p);
      add_result_row(table, "rotation-miss", "error", p, retries, r);
      row.push_back(cell(r));
    }
    grid.add_row(row);
  }
  std::printf("SBR amplification factor under origin faults "
              "(Akamai profile, 1 MiB entity, truncate-late faults)\n\n%s\n",
              grid.to_markdown().c_str());

  // ---- 2. degradation policies under the hostile cell -------------------
  for (const auto& [policy, name] :
       {std::pair{cdn::DegradationPolicy::kSynthesizeError, "error"},
        std::pair{cdn::DegradationPolicy::kServeStale, "serve-stale"},
        std::pair{cdn::DegradationPolicy::kNegativeCache, "negative-cache"}}) {
    const auto r = run_rotation_campaign(deletion_profile(2, policy), 1.0);
    add_result_row(table, "rotation-miss", name, 1.0, 2, r);
  }
  for (const int retries : {0, 2}) {
    for (const auto& [policy, name] :
         {std::pair{cdn::DegradationPolicy::kSynthesizeError, "error"},
          std::pair{cdn::DegradationPolicy::kServeStale, "serve-stale"}}) {
      const auto r = run_stale_revalidation_campaign(retries, policy);
      add_result_row(table, "stale-revalidation", name, 1.0, retries, r);
    }
  }

  core::write_file("fault_retry_amplification.csv", table.to_csv());

  // ---- 3. section VI-C mitigations under the same fault schedule ---------
  core::Table ablation({"configuration", "af_fault_free", "af_faulted",
                        "faults_injected", "degraded_responses"});
  const auto ablation_row = [&](const std::string& name,
                                std::optional<core::Mitigation> m) {
    const auto make = [&] {
      cdn::VendorProfile profile =
          deletion_profile(2, cdn::DegradationPolicy::kSynthesizeError);
      if (m) profile = core::apply_mitigation(std::move(profile), *m);
      return profile;
    };
    const auto healthy = run_rotation_campaign(make(), 0.0);
    const auto faulted = run_rotation_campaign(make(), 0.5);
    ablation.add_row({name, cell(healthy), cell(faulted),
                      std::to_string(faulted.faults),
                      std::to_string(faulted.degraded_responses)});
  };
  ablation_row("Vulnerable baseline", std::nullopt);
  for (const auto m : core::kAllMitigations) {
    ablation_row(std::string{core::mitigation_name(m)}, m);
  }
  std::printf("Mitigations under faults (p=0.50, retries=2)\n\n%s\n",
              ablation.to_markdown().c_str());
  core::write_file("fault_mitigation_ablation.csv", ablation.to_csv());
  return 0;
}
