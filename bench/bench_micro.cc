// Micro-benchmarks (google-benchmark) for the substrate hot paths: Range
// header parsing, multipart framing size computation, serialization size,
// full SBR/OBR end-to-end exchanges and the corpus generator.
#include <benchmark/benchmark.h>

#include "core/rangeamp.h"
#include "http/date.h"
#include "http2/hpack.h"
#include "sim/des.h"

using namespace rangeamp;

namespace {

void BM_ParseRangeHeaderSingle(benchmark::State& state) {
  for (auto _ : state) {
    auto set = http::parse_range_header("bytes=0-0");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_ParseRangeHeaderSingle);

void BM_ParseRangeHeaderMulti(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::string value = core::obr_range_case(cdn::Vendor::kCloudflare, n)
                                .to_string();
  for (auto _ : state) {
    auto set = http::parse_range_header(value);
    benchmark::DoNotOptimize(set);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParseRangeHeaderMulti)->Range(8, 8192)->Complexity(benchmark::oN);

void BM_MultipartSizeComputation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<http::ResolvedRange> ranges(n, http::ResolvedRange{0, 1023});
  for (auto _ : state) {
    auto size = http::multipart_byteranges_size(ranges, 1024,
                                                "application/octet-stream",
                                                "boundary123456");
    benchmark::DoNotOptimize(size);
  }
}
BENCHMARK(BM_MultipartSizeComputation)->Range(8, 8192);

void BM_SerializedSize25MB(benchmark::State& state) {
  http::Response resp = http::make_response(
      http::kOk, http::Body::synthetic(1, 0, 25 * (1u << 20)));
  for (auto _ : state) {
    auto size = http::serialized_size(resp);
    benchmark::DoNotOptimize(size);
  }
}
BENCHMARK(BM_SerializedSize25MB);

void BM_SbrExchange(benchmark::State& state) {
  const std::uint64_t size = static_cast<std::uint64_t>(state.range(0)) << 20;
  for (auto _ : state) {
    auto m = core::measure_sbr(cdn::Vendor::kAkamai, size);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SbrExchange)->Arg(1)->Arg(25);

void BM_ObrExchange(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::CascadeTestbed bed(
      cdn::make_profile(cdn::Vendor::kStackPath),
      cdn::make_profile(cdn::Vendor::kAkamai), core::obr_origin_config());
  bed.origin().resources().add_synthetic("/p.bin", 1024);
  auto request = http::make_get("victim.example.com", "/p.bin");
  request.headers.add(
      "Range", core::obr_range_case(cdn::Vendor::kStackPath, n).to_string());
  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 4096;
  for (auto _ : state) {
    auto response = bed.send(request, abort_early);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ObrExchange)->Arg(64)->Arg(1024)->Arg(10240);

void BM_GenerateCorpus(benchmark::State& state) {
  for (auto _ : state) {
    auto corpus = http::generate_corpus(42, 128, 1u << 20);
    benchmark::DoNotOptimize(corpus);
  }
}
BENCHMARK(BM_GenerateCorpus);

void BM_CacheHitServe(benchmark::State& state) {
  core::SingleCdnTestbed bed(cdn::make_profile(cdn::Vendor::kCloudflare));
  bed.origin().resources().add_synthetic("/hot.bin", 1u << 20);
  auto request = http::make_get("victim.example.com", "/hot.bin");
  bed.send(request);  // warm the cache
  request.headers.add("Range", "bytes=0-1023");
  for (auto _ : state) {
    auto response = bed.send(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_CacheHitServe);

void BM_HpackEncodeRequestHeaders(benchmark::State& state) {
  http2::Encoder encoder;
  const std::vector<http2::HeaderEntry> headers = {
      {":method", "GET"},
      {":scheme", "https"},
      {":authority", "victim.example.com"},
      {":path", "/payload.bin?cb=1"},
      {"range", "bytes=0-0"},
      {"user-agent", "rangeamp/1.0"},
  };
  for (auto _ : state) {
    auto block = encoder.encode(headers);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_HpackEncodeRequestHeaders);

void BM_HpackDecodeRequestHeaders(benchmark::State& state) {
  http2::Encoder encoder;
  const std::string block = encoder.encode({
      {":method", "GET"},
      {":path", "/payload.bin"},
      {"range", "bytes=0-0"},
  });
  for (auto _ : state) {
    http2::Decoder decoder;
    auto headers = decoder.decode(block);
    benchmark::DoNotOptimize(headers);
  }
}
BENCHMARK(BM_HpackDecodeRequestHeaders);

void BM_HttpDateParse(benchmark::State& state) {
  for (auto _ : state) {
    auto ts = http::parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT");
    benchmark::DoNotOptimize(ts);
  }
}
BENCHMARK(BM_HttpDateParse);

void BM_AttackLoadFluid(benchmark::State& state) {
  sim::AttackLoadConfig config;
  config.requests_per_second = 12;
  config.origin_response_bytes = 10'486'029;
  config.client_response_bytes = 822;
  for (auto _ : state) {
    auto series = sim::simulate_attack_load(config);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_AttackLoadFluid);

void BM_AttackLoadDes(benchmark::State& state) {
  sim::AttackLoadConfig config;
  config.requests_per_second = 12;
  config.origin_response_bytes = 10'486'029;
  config.client_response_bytes = 822;
  for (auto _ : state) {
    auto series = sim::simulate_attack_load_des(config);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_AttackLoadDes);

}  // namespace

BENCHMARK_MAIN();
