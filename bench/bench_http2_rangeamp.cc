// Section VI-B: "the RangeAmp threats in HTTP/1.1 are also applicable to
// HTTP/2".  This harness measures the SBR attack with the client-cdn
// segment framed as HTTP/1.1 vs HTTP/2 (HPACK + frames), single-shot and as
// a sustained 20-request campaign where HPACK's dynamic table compresses
// the repeated tiny 206s.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  constexpr std::uint64_t kSize = 10 * (1u << 20);
  core::Table table({"CDN", "AF h1.1", "AF h2 (1 req)", "AF h2 (20 reqs)",
                     "h2/h1.1 (sustained)"});

  for (const cdn::Vendor vendor :
       {cdn::Vendor::kAkamai, cdn::Vendor::kCloudflare, cdn::Vendor::kCloudFront,
        cdn::Vendor::kFastly, cdn::Vendor::kGcoreLabs, cdn::Vendor::kStackPath}) {
    const auto h1 = core::measure_sbr(vendor, kSize);
    const auto h2_single = core::measure_sbr_h2(vendor, kSize, 1);
    const auto h2_sustained = core::measure_sbr_h2(vendor, kSize, 20);
    table.add_row({std::string{cdn::vendor_name(vendor)},
                   core::fixed(h1.amplification, 0),
                   core::fixed(h2_single.amplification, 0),
                   core::fixed(h2_sustained.amplification, 0),
                   core::fixed(h2_sustained.amplification / h1.amplification, 2)});
  }

  std::printf("SBR amplification: HTTP/1.1 vs HTTP/2 framing on client-cdn\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("HTTP/2 changes nothing structural (RFC 7540 defers ranges to\n"
              "RFC 7233); sustained campaigns amplify slightly MORE because\n"
              "HPACK compresses the repeated response headers.\n");
  core::write_file("http2_rangeamp.csv", table.to_csv());
  return 0;
}
