// Experiment 1 at scale: "a large number of valid range requests
// automatically generated based on the ABNF rules" (section V-A), replayed
// through every vendor profile, with per-shape policy statistics -- the raw
// data Tables I/II summarize.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  constexpr std::size_t kProbesPerVendor = 140;
  constexpr std::uint64_t kSeed = 2020;

  core::Table table({"CDN", "shape", "probes", "Laziness", "Deletion",
                     "Expansion", ">1 origin conn"});
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const auto rows =
        core::scan_corpus(vendor, kSeed, kProbesPerVendor, 1u << 20);
    for (const auto& row : rows) {
      table.add_row({std::string{cdn::vendor_name(vendor)},
                     std::string{http::shape_name(row.shape)},
                     std::to_string(row.total), std::to_string(row.lazy),
                     std::to_string(row.deleted), std::to_string(row.expanded),
                     std::to_string(row.multi_connection)});
    }
  }

  std::printf("Feasibility corpus: %zu ABNF-generated range requests per "
              "vendor (seed %llu)\n\n%s\n",
              kProbesPerVendor, static_cast<unsigned long long>(kSeed),
              table.to_markdown().c_str());
  core::write_file("feasibility_corpus.csv", table.to_csv());
  core::write_file("feasibility_corpus.json", table.to_json());
  std::printf("Raw data written to feasibility_corpus.csv / .json\n");
  return 0;
}
