// Origin-shield ablation: what each shielding defense buys back against the
// paper's range-amplification campaigns.
//
// The paper measures attacks against an undefended CDN; this bench re-runs
// them against the origin-shielding layer (CDN-Loop, request coalescing,
// circuit breaking + admission control) with each defense toggled
// separately, so the CSV reads as an ablation:
//
//   1. request coalescing: a same-key burst against a pass-through (no-store)
//      edge collapses N misses into one origin fetch, and a cache-busting
//      SBR campaign with partial key reuse drops its AF by the burst factor;
//   2. circuit breaker: a sustained SBR campaign against a faulty origin
//      (truncate-late, the retry-amplification worst case) is capped at the
//      trip threshold plus one probe per open window, instead of paying the
//      full entity per attempt for the whole campaign;
//   3. admission control: slow-origin pile-up is shed at the connection cap
//      with local 503s that never touch the origin;
//   4. CDN-Loop: a forwarding cascade still works with the defense on (the
//      header costs a few bytes), while an FCDN->BCDN->FCDN cycle -- the
//      paper's OBR topology bent into a loop -- terminates with 508 after a
//      bounded number of forwards, and forged CDN-Loop chains at ingress are
//      cut off at the hop cap;
//   5. Fig 7 projection: the shielded DES run shows the origin uplink
//      staying unsaturated under a load that pins the undefended one.
//
// Everything is seeded and clock-driven: two runs emit byte-identical CSVs.
#include <cstdio>
#include <cstdlib>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/des.h"

using namespace rangeamp;

namespace {

constexpr std::uint64_t kFileSize = 1u << 20;  // 1 MiB entity
constexpr std::string_view kPath = "/payload.bin";

struct Cell {
  int requests = 0;
  std::uint64_t origin_transfers = 0;
  std::uint64_t client_response_bytes = 0;
  std::uint64_t origin_response_bytes = 0;
  int ok_responses = 0;
  int unavailable_responses = 0;  ///< 5xx to the client (shed or degraded)
  cdn::ShieldStats stats;

  double af() const {
    return client_response_bytes == 0
               ? 0.0
               : static_cast<double>(origin_response_bytes) /
                     static_cast<double>(client_response_bytes);
  }
};

struct CampaignSpec {
  cdn::OriginShieldPolicy shield;
  bool disable_cache = false;  ///< pass-through edge: every request is a miss
  int requests = 160;
  int burst = 1;        ///< consecutive requests sharing one cache-busting key
  double rps = 16.0;    ///< campaign clock: request i is sent at i/rps
  int retries = 0;
  net::FaultInjector* faults = nullptr;
};

// A single-node SBR campaign (Range: bytes=0-0, key rotation per burst)
// against a Deletion-policy profile with the given shield settings.
Cell run_shielded_campaign(const CampaignSpec& spec) {
  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.shield = spec.shield;
  profile.traits.cache_enabled = !spec.disable_cache;
  profile.traits.resilience.max_retries = spec.retries;

  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic(std::string{kPath}, kFileSize);
  if (spec.faults) bed.set_origin_fault_injector(spec.faults);

  double now = 0.0;
  bed.cdn().set_clock([&now] { return now; });

  Cell out;
  out.requests = spec.requests;
  for (int i = 0; i < spec.requests; ++i) {
    now = static_cast<double>(i) / spec.rps;
    auto request = http::make_get(
        std::string{core::kDefaultHost},
        std::string{kPath} + "?cb=" + std::to_string(i / spec.burst));
    request.headers.add("Range", "bytes=0-0");
    const auto response = bed.send(request);
    if (response.status >= 500) {
      ++out.unavailable_responses;
    } else {
      ++out.ok_responses;
    }
  }
  out.origin_transfers = bed.origin_traffic().exchange_count();
  out.client_response_bytes = bed.client_traffic().response_bytes();
  out.origin_response_bytes = bed.origin_traffic().response_bytes();
  out.stats = bed.cdn().shield_stats();
  return out;
}

void add_row(core::Table& table, const std::string& scenario,
             const std::string& defense, const std::string& config,
             const Cell& c, const std::string& note = "") {
  table.add_row({scenario, defense, config, std::to_string(c.requests),
                 std::to_string(c.origin_transfers),
                 std::to_string(c.client_response_bytes),
                 std::to_string(c.origin_response_bytes), core::fixed(c.af(), 2),
                 std::to_string(c.stats.coalesced_hits),
                 std::to_string(c.stats.shed_total()),
                 std::to_string(c.stats.loop_rejects_total()), note});
}

cdn::OriginShieldPolicy coalescing_on() {
  cdn::OriginShieldPolicy shield;
  shield.coalescing.enabled = true;
  return shield;
}

cdn::OriginShieldPolicy breaker_on(int trip, int max_connections = 0) {
  cdn::OriginShieldPolicy shield;
  shield.breaker.enabled = true;
  shield.breaker.consecutive_failures_trip = trip;
  shield.breaker.max_connections = max_connections;
  return shield;
}

}  // namespace

int main() {
  core::Table table({"scenario", "defense", "config", "requests",
                     "origin_transfers", "client_response_bytes",
                     "origin_response_bytes", "af", "coalesced", "shed",
                     "loop_rejects", "note"});

  // ---- 1. request coalescing --------------------------------------------
  // Acceptance shape first: a burst of N same-key misses against a no-store
  // edge becomes exactly one origin fetch.
  {
    CampaignSpec spec;
    spec.disable_cache = true;
    spec.requests = 16;
    spec.burst = 16;  // one key for the whole burst
    const Cell off = run_shielded_campaign(spec);
    spec.shield = coalescing_on();
    const Cell on = run_shielded_campaign(spec);
    add_row(table, "same-key-burst", "none", "n=16 no-store", off);
    add_row(table, "same-key-burst", "coalescing", "n=16 no-store", on,
            "burst collapsed to " + std::to_string(on.origin_transfers) +
                " fetch");
    std::printf("same-key burst of 16 misses -> %llu origin fetch(es) "
                "with coalescing (%llu without)\n\n",
                static_cast<unsigned long long>(on.origin_transfers),
                static_cast<unsigned long long>(off.origin_transfers));
  }
  // Campaign grid: cache-busting rotation with partial key reuse.  With
  // burst=1 every key is fresh and the fill lock has nothing to collapse --
  // coalescing cannot defend against full cache-busting, only against
  // concurrent same-key misses.
  for (const int burst : {1, 8}) {
    for (const bool on : {false, true}) {
      CampaignSpec spec;
      spec.disable_cache = true;
      spec.burst = burst;
      if (on) spec.shield = coalescing_on();
      const Cell c = run_shielded_campaign(spec);
      add_row(table, "sbr-rotation", on ? "coalescing" : "none",
              "burst=" + std::to_string(burst) + " no-store", c);
    }
  }

  // ---- 2. circuit breaker under origin faults ---------------------------
  // Truncate-late faults on every upstream transfer: the origin pays the
  // full entity per attempt while the CDN retries.  The breaker trips after
  // 5 consecutive failures and re-probes once per open window.
  for (const bool on : {false, true}) {
    net::FaultInjector faults;
    faults.fail_always(net::FaultSpec::truncate(kFileSize - 1));
    CampaignSpec spec;
    spec.requests = 200;
    spec.rps = 1.0;  // 200 s campaign: several 30 s open windows
    spec.retries = 2;
    spec.faults = &faults;
    if (on) spec.shield = breaker_on(/*trip=*/5);
    const Cell c = run_shielded_campaign(spec);
    add_row(table, "faulty-origin", on ? "breaker" : "none",
            "p=1.00 truncate-late retries=2", c,
            on ? std::to_string(c.stats.breaker_trips) + " trips, " +
                     std::to_string(c.stats.half_open_probes) + " probes"
               : "");
  }

  // ---- 3. admission control under a slow origin -------------------------
  // Every origin transfer takes 2 s; at 10 requests/s the in-flight count
  // piles up.  A connection cap of 4 sheds the excess locally.
  for (const bool on : {false, true}) {
    net::FaultInjector faults;
    faults.fail_always(net::FaultSpec::latency(2.0));
    CampaignSpec spec;
    spec.disable_cache = true;
    spec.requests = 200;
    spec.rps = 10.0;
    spec.faults = &faults;
    if (on) spec.shield = breaker_on(/*trip=*/1000, /*max_connections=*/4);
    const Cell c = run_shielded_campaign(spec);
    add_row(table, "slow-origin", on ? "admission" : "none",
            "latency=2s cap=4", c);
  }

  // ---- 4. CDN-Loop ------------------------------------------------------
  cdn::OriginShieldPolicy loop_on;
  loop_on.loop.enabled = true;

  // 4a. A legitimate OBR cascade keeps working with the defense on; the
  // CDN-Loop/Via lines cost a few forwarded bytes, nothing else changes.
  for (const bool on : {false, true}) {
    cdn::ProfileOptions bypass;
    bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
    cdn::VendorProfile fcdn = cdn::make_profile(cdn::Vendor::kCloudflare, bypass);
    cdn::VendorProfile bcdn = cdn::make_profile(cdn::Vendor::kAkamai);
    if (on) {
      fcdn.traits.shield = loop_on;
      bcdn.traits.shield = loop_on;
    }
    core::CascadeTestbed bed(std::move(fcdn), std::move(bcdn),
                             core::obr_origin_config());
    bed.origin().resources().add_synthetic(std::string{core::kObrPath}, 1024);

    Cell c;
    c.requests = 20;
    const auto range = core::obr_range_case(cdn::Vendor::kCloudflare, 16);
    for (int i = 0; i < c.requests; ++i) {
      auto request = http::make_get(std::string{core::kObrHost},
                                    std::string{core::kObrPath} +
                                        "?cb=" + std::to_string(i));
      request.headers.add("Range", range.to_string());
      const auto response = bed.send(request);
      if (response.status >= 500) {
        ++c.unavailable_responses;
      } else {
        ++c.ok_responses;
      }
    }
    c.origin_transfers = bed.fcdn_bcdn_traffic().exchange_count();
    c.client_response_bytes = bed.client_traffic().response_bytes();
    c.origin_response_bytes = bed.fcdn_bcdn_traffic().response_bytes();
    c.stats = bed.fcdn().shield_stats();
    add_row(table, "obr-cascade", on ? "cdn-loop" : "none", "n=16", c,
            std::to_string(c.ok_responses) + "/20 served");
  }

  // 4b. The cascade bent into a cycle: FCDN -> BCDN -> FCDN.  Undefended
  // this recurses without bound (which is why it cannot be run); with
  // CDN-Loop on both hops the FCDN recognises its own token on re-entry and
  // the request dies with 508 after two inter-CDN forwards.
  {
    cdn::ProfileOptions bypass;
    bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
    cdn::VendorProfile fcdn_profile =
        cdn::make_profile(cdn::Vendor::kCloudflare, bypass);
    cdn::VendorProfile bcdn_profile = cdn::make_profile(cdn::Vendor::kAkamai);
    fcdn_profile.traits.shield = loop_on;
    bcdn_profile.traits.shield = loop_on;

    net::LateBoundHandler loopback;
    cdn::CdnNode bcdn(std::move(bcdn_profile), loopback, "bcdn-fcdn");
    cdn::CdnNode fcdn(std::move(fcdn_profile), bcdn, "fcdn-bcdn");
    loopback.bind(&fcdn);

    net::TrafficRecorder client("client-fcdn");
    net::Wire wire(client, fcdn);

    Cell c;
    c.requests = 20;
    for (int i = 0; i < c.requests; ++i) {
      auto request = http::make_get(std::string{core::kObrHost},
                                    std::string{core::kObrPath} +
                                        "?cb=" + std::to_string(i));
      request.headers.add("Range", "bytes=0-0");
      const auto response = wire.transfer(request);
      if (response.status >= 500) {
        ++c.unavailable_responses;
      } else {
        ++c.ok_responses;
      }
    }
    c.origin_transfers =
        fcdn.upstream_traffic().exchange_count() +
        bcdn.upstream_traffic().exchange_count();
    c.client_response_bytes = client.response_bytes();
    c.origin_response_bytes = fcdn.upstream_traffic().response_bytes() +
                              bcdn.upstream_traffic().response_bytes();
    c.stats = fcdn.shield_stats();
    const auto& bstats = bcdn.shield_stats();
    c.stats.loop_rejected += bstats.loop_rejected;
    c.stats.hop_cap_rejected += bstats.hop_cap_rejected;
    add_row(table, "fcdn-bcdn-loop", "cdn-loop", "cycle", c,
            std::to_string(c.origin_transfers / c.requests) +
                " forwards per request, then 508");
  }

  // 4c. Forged chains at ingress: an attacker pre-seeds CDN-Loop with k
  // entries to probe the hop cap (H=8).  At k >= H the edge refuses before
  // any upstream byte moves.
  for (const std::size_t seeded : {std::size_t{4}, std::size_t{8}}) {
    cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
    profile.traits.shield = loop_on;  // max_hops defaults to 8
    core::SingleCdnTestbed bed(std::move(profile));
    bed.origin().resources().add_synthetic(std::string{kPath}, kFileSize);

    std::string chain;
    for (std::size_t i = 0; i < seeded; ++i) {
      if (!chain.empty()) chain += ", ";
      chain += "forged-cdn-" + std::to_string(i);
    }
    Cell c;
    c.requests = 10;
    for (int i = 0; i < c.requests; ++i) {
      auto request = http::make_get(
          std::string{core::kDefaultHost},
          std::string{kPath} + "?cb=" + std::to_string(i));
      request.headers.add("Range", "bytes=0-0");
      request.headers.add("CDN-Loop", chain);
      const auto response = bed.send(request);
      if (response.status >= 500) {
        ++c.unavailable_responses;
      } else {
        ++c.ok_responses;
      }
    }
    c.origin_transfers = bed.origin_traffic().exchange_count();
    c.client_response_bytes = bed.client_traffic().response_bytes();
    c.origin_response_bytes = bed.origin_traffic().response_bytes();
    c.stats = bed.cdn().shield_stats();
    add_row(table, "forged-chain", "cdn-loop",
            "seeded=" + std::to_string(seeded) + " cap=8", c);
  }

  // ---- 5. Fig 7 projection: shielded origin uplink ----------------------
  // The paper's saturation load (full-entity pulls at 50 req/s against a
  // 1000 Mbps uplink) with the shield's knobs applied in the DES engine.
  {
    sim::ShieldedLoadConfig base;
    base.base.requests_per_second = 50;
    base.base.duration_s = 30;
    base.base.origin_response_bytes = 10u << 20;
    base.base.client_response_bytes = 400;
    base.same_key_burst = 8;

    core::Table fig7({"defense", "peak_origin_mbps", "mean_origin_mbps",
                      "saturated", "origin_fetches", "coalesced", "shed"});
    const auto fig7_row = [&](const std::string& name,
                              sim::ShieldedLoadConfig config) {
      const auto run = sim::simulate_attack_load_shielded(config);
      const auto summary = sim::summarize(config.base, run.series);
      fig7.add_row({name, core::fixed(summary.peak_origin_out_mbps, 0),
                    core::fixed(summary.mean_origin_out_mbps, 0),
                    summary.saturated ? "yes" : "no",
                    std::to_string(run.origin_fetches),
                    std::to_string(run.coalesced), std::to_string(run.shed)});
      Cell c;
      c.requests = base.base.requests_per_second *
                   static_cast<int>(base.base.duration_s);
      c.origin_transfers = run.origin_fetches;
      c.stats.coalesced_hits = run.coalesced;
      c.stats.shed_breaker_open = run.shed;
      add_row(table, "fig7-saturation", name,
              "50rps x 10MiB burst=8", c,
              "peak=" + core::fixed(summary.peak_origin_out_mbps, 0) +
                  "Mbps saturated=" + (summary.saturated ? "yes" : "no"));
    };
    fig7_row("none", base);
    sim::ShieldedLoadConfig coalesced = base;
    coalesced.coalesce = true;
    fig7_row("coalescing", coalesced);
    sim::ShieldedLoadConfig capped = base;
    capped.max_pending = 8;
    capped.shed_response_bytes = 400;
    fig7_row("admission", capped);
    std::printf("Fig 7 with an origin shield (50 req/s x 10 MiB, "
                "1000 Mbps uplink)\n\n%s\n",
                fig7.to_markdown().c_str());
  }

  // ---- 6. end-to-end campaign integration -------------------------------
  // The cluster campaign driver with shield knobs: a pass-through edge
  // (Cloudflare bypass) under partial key reuse, unshielded vs coalescing.
  // RANGEAMP_TRACE / RANGEAMP_METRICS (both off by default, no CSV byte
  // changes) attach the observability hooks to the shielded run and write
  // shield_campaign_trace.jsonl / shield_campaign_metrics.prom.
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  for (const bool on : {false, true}) {
    cdn::ProfileOptions options;
    options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
    cdn::OriginShieldPolicy shield;
    shield.coalescing.enabled = on;
    // Observe only the shielded run: the interesting spans are the
    // fill_lock=coalesced-hit annotations.
    obs::Tracer* trace =
        on && std::getenv("RANGEAMP_TRACE") ? &tracer : nullptr;
    obs::MetricsRegistry* metrics =
        on && std::getenv("RANGEAMP_METRICS") ? &registry : nullptr;
    const auto config = core::SbrCampaignConfig::Builder()
                            .vendor(cdn::Vendor::kCloudflare)
                            .options(options)
                            .file_size(kFileSize)
                            .requests_per_second(16)
                            .duration_s(10)
                            .same_key_burst(8)
                            .shield(shield)
                            .tracer(trace)
                            .metrics(metrics)
                            .build();
    const auto r = core::run_sbr_campaign(config);
    if (trace) {
      core::write_file("shield_campaign_trace.jsonl", trace->to_jsonl());
      std::printf("RANGEAMP_TRACE: %zu spans written to "
                  "shield_campaign_trace.jsonl\n",
                  trace->spans().size());
    }
    if (metrics) {
      core::write_file("shield_campaign_metrics.prom",
                       metrics->to_prometheus());
      std::printf("RANGEAMP_METRICS: %zu metric families written to "
                  "shield_campaign_metrics.prom\n",
                  metrics->metric_count());
    }
    Cell c;
    c.requests = config.requests_per_second * config.duration_s;
    c.client_response_bytes = r.attacker.response_bytes;
    c.origin_response_bytes = r.origin.response_bytes;
    c.origin_transfers = r.shield_stats.fill_fetches;
    c.stats = r.shield_stats;
    add_row(table, "cluster-campaign", on ? "coalescing" : "none",
            "cloudflare-bypass burst=8", c,
            "nodes_touched=" + std::to_string(r.nodes_touched));
  }

  std::printf("%s\n", table.to_markdown().c_str());
  core::write_file("origin_shield_ablation.csv", table.to_csv());
  return 0;
}
