// Cache-pollution grid: a seeded attacker interleaves random-query
// 1-byte-range floods (the paper's SBR shape, section II-A) with a
// Zipf-distributed legit workload against a single byte-budgeted edge node
// (docs/cache-model.md).  On the Akamai profile every attack request is a
// Deletion-policy miss: the node pulls the FULL entity from the origin and
// caches it under the junk key -- so the flood simultaneously amplifies
// origin traffic and pollutes the cache.
//
// Grid: budget {unbounded, 64 MiB, 8 MiB} x policy {fifo-naive, s3-fifo}
// x 4 seeds -> cache_pollution.csv.  Three invariants are checked; the
// process exits non-zero on any breach (the CI cache gate):
//
//   I1  budget respected: peak resident bytes never exceed max_bytes on any
//       budgeted row;
//   I2  scan resistance: at the 8 MiB budget, S3-FIFO keeps the legit
//       hit-rate within 10 points of the unbounded baseline (per seed)
//       while FIFO-naive collapses by more than 20 points;
//   I3  determinism: one grid cell re-runs byte-identically (the committed
//       CSV is further drift-gated by reproduce.sh).
//
// RANGEAMP_METRICS=1 additionally re-runs one polluted cell with a metrics
// registry attached and exports the cdn_cache_* catalogue as
// cache_pollution_metrics.prom (validated by scripts/check_metrics.py).
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "core/rangeamp.h"
#include "obs/metrics.h"

using namespace rangeamp;

namespace {

constexpr std::uint64_t kSeeds[] = {0xCAC1, 0xCAC2, 0xCAC3, 0xCAC4};
constexpr std::uint64_t kBudgets[] = {0, 64ull << 20, 8ull << 20};
constexpr cdn::CacheEvictionPolicy kPolicies[] = {
    cdn::CacheEvictionPolicy::kFifoNaive, cdn::CacheEvictionPolicy::kS3Fifo};

core::CachePollutionConfig cell_config(std::uint64_t budget,
                                       cdn::CacheEvictionPolicy policy,
                                       std::uint64_t seed) {
  core::CachePollutionConfig config;
  config.cache.max_bytes = budget;
  config.cache.policy = policy;
  config.seed = seed;
  return config;
}

std::string budget_label(std::uint64_t budget) {
  if (budget == 0) return "unbounded";
  return std::to_string(budget >> 20) + "MiB";
}

}  // namespace

int main() {
  core::Table table({"vendor", "policy", "budget", "budget_bytes", "seed",
                     "legit_requests", "attack_requests", "legit_hits",
                     "legit_hit_rate", "origin_response_bytes",
                     "attack_origin_response_bytes", "attack_amplification",
                     "attacker_request_bytes", "attacker_response_bytes",
                     "cache_bytes_peak", "cache_bytes_end", "evictions",
                     "admission_rejects"});

  bool clean = true;
  // hit_rate[budget index][policy index], refilled per seed for I2.
  for (const std::uint64_t seed : kSeeds) {
    double unbounded_rate = 0;
    double rate_8mib_fifo = 0;
    double rate_8mib_s3 = 0;
    for (const std::uint64_t budget : kBudgets) {
      for (const cdn::CacheEvictionPolicy policy : kPolicies) {
        const core::CachePollutionConfig config =
            cell_config(budget, policy, seed);
        const core::CachePollutionResult r =
            core::run_cache_pollution_campaign(config);

        if (budget == 0 && policy == cdn::CacheEvictionPolicy::kS3Fifo) {
          unbounded_rate = r.legit_hit_rate;  // policy is moot unbounded
        }
        if (budget == (8ull << 20)) {
          (policy == cdn::CacheEvictionPolicy::kS3Fifo ? rate_8mib_s3
                                                       : rate_8mib_fifo) =
              r.legit_hit_rate;
        }

        if (budget != 0 && r.cache_bytes_peak > budget) {
          std::fprintf(stderr,
                       "I1 budget breached: %s/%s seed %llu peak %llu > %llu\n",
                       std::string{cdn::cache_policy_name(policy)}.c_str(),
                       budget_label(budget).c_str(),
                       static_cast<unsigned long long>(seed),
                       static_cast<unsigned long long>(r.cache_bytes_peak),
                       static_cast<unsigned long long>(budget));
          clean = false;
        }

        table.add_row(
            {"Akamai", std::string{cdn::cache_policy_name(policy)},
             budget_label(budget),
             std::to_string(budget), std::to_string(seed),
             std::to_string(r.legit_requests), std::to_string(r.attack_requests),
             std::to_string(r.legit_hits), core::fixed(r.legit_hit_rate, 4),
             std::to_string(r.origin_response_bytes),
             std::to_string(r.attack_origin_response_bytes),
             core::fixed(r.attack_amplification, 3),
             std::to_string(r.attacker.request_bytes),
             std::to_string(r.attacker.response_bytes),
             std::to_string(r.cache_bytes_peak),
             std::to_string(r.cache_bytes_end), std::to_string(r.cache_evictions),
             std::to_string(r.cache_admission_rejects)});
      }
    }

    // I2: the pollution study's headline contrast, per seed.
    if (rate_8mib_s3 < unbounded_rate - 0.10) {
      std::fprintf(stderr,
                   "I2 scan resistance failed: seed %llu s3-fifo@8MiB %.4f vs "
                   "unbounded %.4f (allowed drop 0.10)\n",
                   static_cast<unsigned long long>(seed), rate_8mib_s3,
                   unbounded_rate);
      clean = false;
    }
    if (rate_8mib_fifo > unbounded_rate - 0.20) {
      std::fprintf(stderr,
                   "I2 collapse contrast failed: seed %llu fifo-naive@8MiB "
                   "%.4f did not drop >0.20 below unbounded %.4f\n",
                   static_cast<unsigned long long>(seed), rate_8mib_fifo,
                   unbounded_rate);
      clean = false;
    }
  }

  // I3: one cell must replay byte-identically.
  {
    const core::CachePollutionConfig config = cell_config(
        8ull << 20, cdn::CacheEvictionPolicy::kS3Fifo, kSeeds[0]);
    const core::CachePollutionResult a = core::run_cache_pollution_campaign(config);
    const core::CachePollutionResult b = core::run_cache_pollution_campaign(config);
    if (a.legit_hits != b.legit_hits ||
        a.origin_response_bytes != b.origin_response_bytes ||
        a.attacker.response_bytes != b.attacker.response_bytes ||
        a.cache_bytes_peak != b.cache_bytes_peak ||
        a.cache_evictions != b.cache_evictions) {
      std::fprintf(stderr, "I3 determinism failed: replay diverged\n");
      clean = false;
    }
  }

  std::fputs(table.to_markdown().c_str(), stdout);
  if (!core::write_file("cache_pollution.csv", table.to_csv())) {
    std::fprintf(stderr, "failed to write cache_pollution.csv\n");
    return 1;
  }
  std::printf("\nwrote cache_pollution.csv\n");

  if (const char* env = std::getenv("RANGEAMP_METRICS");
      env && std::string_view{env} == "1") {
    obs::MetricsRegistry metrics;
    core::CachePollutionConfig config = cell_config(
        8ull << 20, cdn::CacheEvictionPolicy::kS3Fifo, kSeeds[0]);
    config.metrics = &metrics;
    (void)core::run_cache_pollution_campaign(config);
    if (!core::write_file("cache_pollution_metrics.prom",
                          metrics.to_prometheus())) {
      std::fprintf(stderr, "failed to write cache_pollution_metrics.prom\n");
      return 1;
    }
    std::printf("wrote cache_pollution_metrics.prom\n");
  }

  if (!clean) {
    std::fprintf(stderr, "cache-pollution invariant violations -- see above\n");
    return 1;
  }
  std::printf("all cache-pollution invariants held across %zu seeds\n",
              std::size(kSeeds));
  return 0;
}
