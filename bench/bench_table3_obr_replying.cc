// Reproduces Table III: multi-range replying behaviours vulnerable to the
// OBR attack (the BCDN side) -- vendors that answer an overlapping
// multi-range request with one part per range, no overlap checks.
//
// The scanner also discovers the honored-range cap (Azure's n <= 64).
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  core::Table table({"CDN", "Reply to bytes=0-,0-,... (overlapping)",
                     "OBR BCDN vulnerable"});

  std::size_t vulnerable = 0;
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const auto obs = core::scan_replying(vendor);
    table.add_row({std::string{cdn::vendor_name(vendor)}, obs.response_format,
                   obs.obr_reply_vulnerable ? "YES" : "no"});
    if (obs.obr_reply_vulnerable) ++vulnerable;
  }

  std::printf("Table III -- multi-range replying behaviours (BCDN role)\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("%zu vendors OBR-BCDN-vulnerable (paper: Akamai, Azure (n<=64), "
              "StackPath)\n",
              vulnerable);
  core::write_file("table3_obr_replying.csv", table.to_csv());
  return vulnerable == 3 ? 0 : 1;
}
