// Beyond the paper's ethics boundary: OBR node exhaustion, simulated.
//
// Section V-D: "In an OBR attack, the victims are specific ingress nodes of
// the FCDN and the BCDN.  Due to an ethical concern, we can't launch a real
// attack to verify whether an ingress node is affected."  In simulation we
// can: sustained OBR requests are pinned to one BCDN node and its uplink
// toward the FCDN is modelled as a capacity-limited link.  The table shows
// how fast a single laptop-rate attacker saturates a 1 Gbps (and a 10 Gbps)
// node uplink for each vulnerable cascade.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  core::Table table({"FCDN->BCDN", "n", "MB/request on fcdn-bcdn", "req/s",
                     "node uplink", "saturated after", "attacker recv B/req"});

  for (const auto& [fcdn, bcdn] :
       {std::pair{cdn::Vendor::kCloudflare, cdn::Vendor::kAkamai},
        std::pair{cdn::Vendor::kStackPath, cdn::Vendor::kAkamai},
        std::pair{cdn::Vendor::kCdn77, cdn::Vendor::kStackPath},
        std::pair{cdn::Vendor::kCloudflare, cdn::Vendor::kAzure}}) {
    for (const double uplink_mbps : {1000.0, 10000.0}) {
      const core::ObrCampaignConfig config =
          core::ObrCampaignConfig::Builder{}
              .fcdn(fcdn)
              .bcdn(bcdn)
              .requests_per_second(20)  // one laptop, modest rate
              .duration_s(15)
              .node_uplink_mbps(uplink_mbps)
              .build();
      const auto result = core::run_obr_campaign(config);
      if (result.n == 0) continue;
      table.add_row(
          {std::string{cdn::vendor_name(fcdn)} + "->" +
               std::string{cdn::vendor_name(bcdn)},
           std::to_string(result.n),
           core::fixed(result.fcdn_bcdn_bytes_per_request / 1048576.0, 2),
           std::to_string(config.requests_per_second),
           core::fixed(uplink_mbps / 1000.0, 0) + " Gbps",
           result.seconds_to_saturation >= 0
               ? core::fixed(result.seconds_to_saturation, 0) + " s"
               : "never",
           core::with_thousands(result.attacker_response_bytes /
                                (20ull * 15ull))});
    }
  }

  std::printf("OBR node exhaustion (simulated; the experiment the paper "
              "could not run ethically)\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("A 20 req/s attacker saturates a 1 Gbps inter-CDN node uplink\n"
              "within seconds through the Akamai/StackPath cascades, while\n"
              "receiving a few KB per request itself.  Azure's 64-range cap\n"
              "keeps per-request traffic near 85 KB -- no saturation.\n");
  core::write_file("obr_node_exhaustion.csv", table.to_csv());
  return 0;
}
