// Reproduces Fig 7: bandwidth consumption of the client (7a) and the origin
// server (7b) during a sustained SBR attack -- m requests per second for 30
// seconds against a 1000 Mbps origin uplink, m = 1..15.
//
// The per-request byte costs are measured on the same Cloudflare-profile
// testbed the paper used (10 MB target resource); the time domain comes from
// the fluid-flow bandwidth simulator.
// Observability (both OFF by default; neither changes a single CSV byte):
//   RANGEAMP_TRACE=1    trace the per-request cost measurement, write
//                       fig7_trace.jsonl,
//   RANGEAMP_METRICS=1  project the origin-out time series onto sim-clock
//                       sampled gauges, write fig7_metrics_series.csv.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/des.h"

using namespace rangeamp;

int main() {
  constexpr std::uint64_t kTarget = 10 * (1u << 20);

  obs::Tracer tracer;
  obs::Tracer* trace = std::getenv("RANGEAMP_TRACE") ? &tracer : nullptr;
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      std::getenv("RANGEAMP_METRICS") ? &registry : nullptr;

  // Per-request costs, measured once on the byte-exact testbed.
  const core::SbrMeasurement unit =
      core::measure_sbr(cdn::Vendor::kCloudflare, kTarget, {}, trace);
  if (trace) {
    core::write_file("fig7_trace.jsonl", trace->to_jsonl());
    std::printf("RANGEAMP_TRACE: %zu spans written to fig7_trace.jsonl\n",
                trace->spans().size());
  }
  std::printf("Per-request costs (Cloudflare, 10 MB target): origin sends "
              "%llu B, client receives %llu B (AF %.0f)\n\n",
              static_cast<unsigned long long>(unit.origin_response_bytes),
              static_cast<unsigned long long>(unit.client_response_bytes),
              unit.amplification);

  core::Table summary({"m (req/s)", "origin out mean Mbps", "origin out peak Mbps",
                       "client in peak Kbps", "origin saturated"});

  // Full time series for the CSV (one column per m).
  std::vector<std::vector<sim::BandwidthSample>> all;
  for (int m = 1; m <= 15; ++m) {
    sim::AttackLoadConfig config;
    config.requests_per_second = m;
    config.origin_response_bytes = unit.origin_response_bytes;
    config.client_response_bytes = unit.client_response_bytes;
    const auto series = sim::simulate_attack_load(config);
    const auto stats = sim::summarize(config, series);
    summary.add_row({std::to_string(m), core::fixed(stats.mean_origin_out_mbps, 1),
                     core::fixed(stats.peak_origin_out_mbps, 1),
                     core::fixed(stats.peak_client_in_kbps, 1),
                     stats.saturated ? "YES" : "no"});
    all.push_back(series);
  }

  std::printf("Fig 7 -- bandwidth consumption vs attack rate m\n\n%s\n",
              summary.to_markdown().c_str());

  std::vector<std::string> header{"t_s"};
  for (int m = 1; m <= 15; ++m) header.push_back("m=" + std::to_string(m));
  core::Table fig7a(header), fig7b(header);
  for (std::size_t t = 0; t < all[0].size(); ++t) {
    std::vector<std::string> row_a{std::to_string(t)};
    std::vector<std::string> row_b{std::to_string(t)};
    for (const auto& series : all) {
      row_a.push_back(core::fixed(series[t].client_in_kbps, 2));
      row_b.push_back(core::fixed(series[t].origin_out_mbps, 2));
    }
    fig7a.add_row(row_a);
    fig7b.add_row(row_b);
  }
  core::write_file("fig7a_client_in_kbps.csv", fig7a.to_csv());
  core::write_file("fig7b_origin_out_mbps.csv", fig7b.to_csv());
  std::printf("Time series written to fig7a_client_in_kbps.csv / "
              "fig7b_origin_out_mbps.csv\n\n");

  if (metrics) {
    // The same series through the metrics pipeline: one gauge per attack
    // rate, sampled at each simulated second.
    std::vector<obs::Gauge*> gauges;
    for (int m = 1; m <= 15; ++m) {
      gauges.push_back(&registry.gauge(
          "fig7_origin_out_mbps{m=\"" + std::to_string(m) + "\"}",
          "origin uplink egress during a sustained SBR campaign"));
    }
    for (std::size_t t = 0; t < all[0].size(); ++t) {
      for (std::size_t i = 0; i < gauges.size(); ++i) {
        gauges[i]->set(all[i][t].origin_out_mbps);
      }
      registry.sample(static_cast<double>(t));
    }
    core::write_file("fig7_metrics_series.csv", registry.series_csv());
    std::printf("RANGEAMP_METRICS: %zu samples written to "
                "fig7_metrics_series.csv\n\n",
                registry.sample_count());
  }

  // Cross-validation: the exact event-driven engine must agree with the
  // fluid integration (tests/sim/des_test.cc pins this; shown here for the
  // record).
  for (const int m : {8, 12}) {
    sim::AttackLoadConfig config;
    config.requests_per_second = m;
    config.origin_response_bytes = unit.origin_response_bytes;
    config.client_response_bytes = unit.client_response_bytes;
    const auto fluid = sim::summarize(config, sim::simulate_attack_load(config));
    const auto des = sim::summarize(config, sim::simulate_attack_load_des(config));
    std::printf("engine cross-check m=%-2d: fluid %.1f Mbps vs "
                "discrete-event %.1f Mbps (%+.2f%%)\n",
                m, fluid.mean_origin_out_mbps, des.mean_origin_out_mbps,
                100.0 * (des.mean_origin_out_mbps - fluid.mean_origin_out_mbps) /
                    fluid.mean_origin_out_mbps);
  }
  return 0;
}
