// Collateral damage: what the SBR attack does to legitimate users sharing
// the victim's origin uplink.
//
// The paper's severity assessment (section V-E) argues the attack "creates
// a denial of service in seconds".  This harness quantifies it: benign
// clients continuously pull 5 MB resources from the origin (2/s) while the
// attack rate m sweeps 0..15; reported are the benign fetch latency and
// goodput, before and past the saturation knee.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  const auto unit = core::measure_sbr(cdn::Vendor::kCloudflare, 10u << 20);

  core::Table table({"attack m (req/s)", "origin out Mbps", "benign goodput Mbps",
                     "benign fetch latency s", "latency vs baseline"});
  double baseline_latency = 0;
  for (const int m : {0, 4, 8, 11, 12, 14, 15}) {
    sim::AttackLoadConfig config;
    config.requests_per_second = m;
    config.origin_response_bytes = unit.origin_response_bytes;
    config.client_response_bytes = unit.client_response_bytes;
    config.benign_requests_per_second = 2;
    config.benign_response_bytes = 5u << 20;
    config.duration_s = 30;
    config.drain_s = 30;
    const auto series = sim::simulate_attack_load(config);

    // Steady-state (5s..30s) benign metrics.
    double goodput = 0, latency = 0;
    std::size_t goodput_n = 0, latency_n = 0;
    double origin_out = 0;
    for (const auto& sample : series) {
      if (sample.second < 5 || sample.second >= 30) continue;
      goodput += sample.benign_goodput_mbps;
      ++goodput_n;
      origin_out += sample.origin_out_mbps;
      if (sample.benign_latency_s >= 0) {
        latency += sample.benign_latency_s;
        ++latency_n;
      }
    }
    goodput /= static_cast<double>(goodput_n);
    origin_out /= static_cast<double>(goodput_n);
    latency = latency_n ? latency / static_cast<double>(latency_n) : -1;
    if (m == 0) baseline_latency = latency;
    table.add_row({std::to_string(m), core::fixed(origin_out, 1),
                   core::fixed(goodput, 1),
                   latency >= 0 ? core::fixed(latency, 3) : "stalled",
                   latency >= 0 && baseline_latency > 0
                       ? core::fixed(latency / baseline_latency, 1) + "x"
                       : "-"});
  }

  std::printf("Collateral damage to benign clients (2 req/s of 5 MB) during "
              "an SBR attack\n\n%s\n",
              table.to_markdown().c_str());
  std::printf("Below the knee the benign flows keep their goodput with mildly\n"
              "inflated latency; past m ~ 12 the shared uplink saturates and\n"
              "benign fetch latency grows without bound -- the denial of\n"
              "service the paper describes.\n");
  core::write_file("collateral_damage.csv", table.to_csv());
  return 0;
}
