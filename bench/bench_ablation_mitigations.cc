// Ablation: re-runs the SBR and OBR attacks with each mitigation of section
// VI-C applied, showing which mitigation kills which attack.
//
//   * Laziness forwarding / bounded +8KB expansion -> SBR amplification
//     collapses to ~1x,
//   * coalesce / reject-overlapping / range-count cap -> OBR amplification
//     collapses,
// and the complementary attack is unaffected where the paper says so
// (reply-side guards do nothing for SBR).
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

// SBR against an Akamai-profile node with a mitigation applied.
double sbr_af_with(std::optional<core::Mitigation> m) {
  constexpr std::uint64_t kSize = 10 * (1u << 20);
  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  if (m) profile = core::apply_mitigation(std::move(profile), *m);
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/payload.bin", kSize);
  auto request = http::make_get("victim.example.com", "/payload.bin?cb=1");
  request.headers.add("Range", "bytes=0-0");
  bed.send(request);
  return static_cast<double>(bed.origin_traffic().response_bytes()) /
         static_cast<double>(bed.client_traffic().response_bytes());
}

// OBR with a Cloudflare(Bypass) -> Akamai cascade, mitigation applied to the
// BCDN (the replying side).
double obr_af_with(std::optional<core::Mitigation> m) {
  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  cdn::VendorProfile bcdn = cdn::make_profile(cdn::Vendor::kAkamai);
  if (m) bcdn = core::apply_mitigation(std::move(bcdn), *m);
  core::CascadeTestbed bed(cdn::make_profile(cdn::Vendor::kCloudflare, bypass),
                           std::move(bcdn), core::obr_origin_config());
  bed.origin().resources().add_synthetic("/payload.bin", 1024);
  auto request = http::make_get("victim.example.com", "/payload.bin");
  request.headers.add("Range", core::obr_range_case(cdn::Vendor::kCloudflare, 512)
                                   .to_string());
  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 4096;
  bed.send(request, abort_early);
  const auto origin_bytes = bed.bcdn_origin_traffic().response_bytes();
  if (origin_bytes == 0) return 0.0;
  return static_cast<double>(bed.fcdn_bcdn_traffic().response_bytes()) /
         static_cast<double>(origin_bytes);
}

}  // namespace

int main() {
  core::Table table({"Configuration", "SBR AF (Akamai, 10MB)",
                     "OBR AF (Cloudflare->Akamai, n=512)"});
  table.add_row({"Vulnerable baseline", core::fixed(sbr_af_with(std::nullopt), 1),
                 core::fixed(obr_af_with(std::nullopt), 1)});
  for (const auto m : core::kAllMitigations) {
    table.add_row({std::string{core::mitigation_name(m)},
                   core::fixed(sbr_af_with(m), 1), core::fixed(obr_af_with(m), 1)});
  }
  std::printf("Mitigation ablation (section VI-C)\n\n%s\n",
              table.to_markdown().c_str());
  core::write_file("ablation_mitigations.csv", table.to_csv());
  return 0;
}
