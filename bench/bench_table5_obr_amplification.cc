// Reproduces Table V: the max amplification factor of the OBR attack for
// every FCDN x BCDN cascade (11 feasible combinations), with a 1 KB target
// resource and the max n admitted by the cascade's header limits.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  core::Table table({"FCDN", "BCDN", "Exploited Range Case", "Max n",
                     "Server->BCDN B", "BCDN->FCDN B", "Amplification"});

  const auto results = core::measure_all_obr();
  for (const auto& m : results) {
    if (!m.feasible) {
      table.add_row({std::string{cdn::vendor_name(m.fcdn)},
                     std::string{cdn::vendor_name(m.bcdn)}, m.exploited_case, "-",
                     "-", "-", "- (self-cascade excluded)"});
      continue;
    }
    table.add_row({std::string{cdn::vendor_name(m.fcdn)},
                   std::string{cdn::vendor_name(m.bcdn)}, m.exploited_case,
                   std::to_string(m.max_n),
                   core::with_thousands(m.bcdn_origin_response_bytes),
                   core::with_thousands(m.fcdn_bcdn_response_bytes),
                   core::fixed(m.amplification, 2)});
  }

  std::printf(
      "Table V -- max OBR amplification (1 KB target, attacker aborts early)\n\n%s\n",
      table.to_markdown().c_str());
  core::write_file("table5_obr.csv", table.to_csv());
  std::printf("CSV written to table5_obr.csv\n");
  return 0;
}
