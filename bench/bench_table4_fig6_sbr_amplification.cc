// Reproduces Table IV and Fig 6a/6b/6c: the SBR amplification factor as a
// function of the target resource size, for all 13 vendors.
//
// Output:
//   * Table IV (amplification at 1 MB / 10 MB / 25 MB) on stdout,
//   * fig6a_amplification.csv, fig6b_client_traffic.csv,
//     fig6c_origin_traffic.csv -- the full 1..25 MB series.
//
// Observability (both OFF by default; neither changes a single CSV byte):
//   RANGEAMP_TRACE=1    trace every measurement, write fig6_trace.jsonl
//                       (validated by scripts/check_trace.py in CI),
//   RANGEAMP_METRICS=1  per-vendor amplification histograms, write
//                       fig6_metrics.prom (Prometheus text format).
//
// Parallelism (default 1; any value writes the same CSV bytes, which the
// reproduce.sh drift gate re-verifies at 8 threads):
//   RANGEAMP_THREADS=N  run each vendor's size sweep on N worker threads.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace rangeamp;

int main() {
  constexpr std::uint64_t kMiB = 1u << 20;
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t mb = 1; mb <= 25; ++mb) sizes.push_back(mb * kMiB);

  obs::Tracer tracer;
  obs::Tracer* trace = std::getenv("RANGEAMP_TRACE") ? &tracer : nullptr;
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      std::getenv("RANGEAMP_METRICS") ? &registry : nullptr;
  const char* threads_env = std::getenv("RANGEAMP_THREADS");
  const int threads =
      threads_env && *threads_env ? std::atoi(threads_env) : 1;

  core::Table table4({"CDN", "Exploited Range Case", "AF @1MB", "AF @10MB",
                      "AF @25MB", "client B @25MB", "origin B @25MB"});
  core::Table fig6a({"size_mb"});
  core::Table fig6b({"size_mb"});
  core::Table fig6c({"size_mb"});

  // Column-major collection for the CSV series.
  std::vector<std::vector<core::SbrMeasurement>> all;
  std::vector<std::string> names;
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    all.push_back(core::sweep_sbr(vendor, sizes, {}, trace, threads));
    names.emplace_back(cdn::vendor_name(vendor));
    const auto& sweep = all.back();
    if (metrics) {
      auto& histogram = metrics->histogram(
          "sbr_amplification_factor{vendor=\"" +
              std::string{cdn::vendor_name(vendor)} + "\"}",
          obs::amplification_buckets(), "SBR amplification factor per size");
      for (const auto& m : sweep) histogram.observe(m.amplification);
    }
    const auto& at1 = sweep[0];
    const auto& at10 = sweep[9];
    const auto& at25 = sweep[24];
    std::string range_case = at1.exploited_case;
    if (at25.exploited_case != at1.exploited_case) {
      range_case += " / " + at25.exploited_case;
    }
    table4.add_row({std::string{cdn::vendor_name(vendor)}, range_case,
                    core::fixed(at1.amplification, 0),
                    core::fixed(at10.amplification, 0),
                    core::fixed(at25.amplification, 0),
                    core::with_thousands(at25.client_response_bytes),
                    core::with_thousands(at25.origin_response_bytes)});
  }

  // CSV series: one column per vendor.
  core::Table csv_a(std::vector<std::string>{});
  {
    std::vector<std::string> header{"size_mb"};
    for (const auto& n : names) header.push_back(n);
    core::Table a(header), b(header), c(header);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> ra{std::to_string(i + 1)};
      std::vector<std::string> rb{std::to_string(i + 1)};
      std::vector<std::string> rc{std::to_string(i + 1)};
      for (const auto& sweep : all) {
        ra.push_back(core::fixed(sweep[i].amplification, 1));
        rb.push_back(std::to_string(sweep[i].client_response_bytes));
        rc.push_back(std::to_string(sweep[i].origin_response_bytes));
      }
      a.add_row(ra);
      b.add_row(rb);
      c.add_row(rc);
    }
    core::write_file("fig6a_amplification.csv", a.to_csv());
    core::write_file("fig6b_client_traffic.csv", b.to_csv());
    core::write_file("fig6c_origin_traffic.csv", c.to_csv());
  }

  std::printf("Table IV -- SBR amplification factor vs target resource size\n\n%s\n",
              table4.to_markdown().c_str());
  std::printf("Full 1..25 MB series written to fig6a_amplification.csv, "
              "fig6b_client_traffic.csv, fig6c_origin_traffic.csv\n");
  if (trace) {
    core::write_file("fig6_trace.jsonl", trace->to_jsonl());
    std::printf("RANGEAMP_TRACE: %zu spans across %llu traces written to "
                "fig6_trace.jsonl\n",
                trace->spans().size(),
                static_cast<unsigned long long>(trace->trace_count()));
  }
  if (metrics) {
    core::write_file("fig6_metrics.prom", metrics->to_prometheus());
    std::printf("RANGEAMP_METRICS: %zu metric families written to "
                "fig6_metrics.prom\n",
                metrics->metric_count());
  }
  return 0;
}
