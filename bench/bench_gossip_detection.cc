// Distributed-detection grid: a node-rotating SBR attacker (the paper's
// section V-D spreading trick) against an 8-node detection-enabled edge
// cluster carrying a 120k-user Zipf workload -> gossip_detection.csv.
//
// Each row measures how long the cluster takes to quarantine the attacker
// EVERYWHERE (detection latency, in attacker rotations and sim seconds) and
// what the quarantine costs legitimate clients (false-positive collateral),
// across gossip fanout x attacker rotation rate x injected message loss x
// node churn.  The headline contrast: per-node detection alone (gossip off)
// never converges -- each node's signature TTL-expires between attacker
// visits -- while gossip propagates the refreshed signature and the whole
// cluster locks the attacker out within tens of rotations.
//
// Invariants (process exits non-zero on breach; the CI detection gate):
//
//   I1  every gossip-on row converges, within kMaxLatencySeconds of the
//       first attack and kMaxRotations attacker rotations;
//   I2  the gossip-off row NEVER converges (and ends with partial coverage);
//   I3  false-positive collateral stays under kMaxCollateral on every row,
//       is exactly zero without pattern quarantine, and the no-attacker row
//       records zero alarms and zero quarantined requests;
//   I4  gossip quarantines more attack requests than gossip-off;
//   I5  determinism: the fanout-2 row replays byte-identically, serial vs
//       sharded schedule materialization (shards=8).
//
// RANGEAMP_THREADS=N materializes schedules on N workers (the campaign
// replay itself is serial by design -- gossip couples the nodes); output
// bytes are identical at any thread count, which reproduce.sh drift-gates.
// RANGEAMP_METRICS=1 re-runs the fanout-2 cell with a metrics registry and
// exports the cdn_gossip_* catalogue as gossip_detection_metrics.prom.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>

#include "core/rangeamp.h"
#include "obs/metrics.h"

using namespace rangeamp;

namespace {

// The campaign is seeded end-to-end, so these are envelopes over the exact
// committed grid (slowest observed: loss+churn at 8.5 s; rotation-4 at 35
// rotations), not statistical allowances.  A model change that slows
// cluster-wide quarantine past them should trip this gate.
constexpr double kMaxLatencySeconds = 10.0;
constexpr double kMaxRotations = 50.0;
constexpr double kMaxCollateral = 0.02;

struct Row {
  const char* label;
  bool detection = true;
  bool gossip = true;
  std::size_t fanout = 2;
  std::size_t rotation = 8;     ///< attacker requests per node before moving
  double loss = 0;              ///< gossip message-loss probability
  double churn_seconds = 0;     ///< detection-restart period (0 = none)
  bool pattern_quarantine = false;
  bool attacker = true;
};

constexpr Row kRows[] = {
    {"detection-off", /*detection=*/false, /*gossip=*/false},
    {"gossip-off", true, /*gossip=*/false},
    {"fanout-1", true, true, /*fanout=*/1},
    {"fanout-2", true, true, 2},
    {"fanout-4", true, true, /*fanout=*/4},
    {"rotation-4", true, true, 2, /*rotation=*/4},
    {"rotation-16", true, true, 2, /*rotation=*/16},
    {"loss-30", true, true, 2, 8, /*loss=*/0.3},
    {"churn-1s", true, true, 2, 8, 0, /*churn_seconds=*/1.0},
    {"loss-30-churn-1s", true, true, 2, 8, 0.3, 1.0},
    {"pattern-quarantine", true, true, 2, 8, 0, 0, /*pattern=*/true},
    {"no-attacker", true, true, 2, 8, 0, 0, false, /*attacker=*/false},
};

core::GossipDetectionConfig row_config(const Row& row, int threads) {
  core::GossipDetectionConfig config;
  config.attacker_rotation_requests = row.rotation;
  if (!row.attacker) config.attack_every = 0;
  config.churn_restart_period_seconds = row.churn_seconds;
  config.detection.enabled = row.detection;
  config.detection.quarantine_enabled = row.detection;
  config.detection.pattern_quarantine = row.pattern_quarantine;
  config.detection.detector.decay_clean_windows = 2;
  config.detection.gossip.enabled = row.gossip;
  config.detection.gossip.fanout = row.fanout;
  config.detection.gossip.message_loss_rate = row.loss;
  config.shards = threads > 1 ? 8 : 1;
  config.threads = threads;
  return config;
}

bool results_equal(const core::GossipDetectionResult& a,
                   const core::GossipDetectionResult& b) {
  return a.legit_requests == b.legit_requests &&
         a.attack_requests == b.attack_requests &&
         a.legit_quarantined == b.legit_quarantined &&
         a.attack_quarantined == b.attack_quarantined &&
         a.convergence_exchange == b.convergence_exchange &&
         a.alarms == b.alarms && a.final_coverage == b.final_coverage &&
         a.signatures_expired == b.signatures_expired &&
         a.gossip.messages_sent == b.gossip.messages_sent &&
         a.gossip.messages_dropped == b.gossip.messages_dropped &&
         a.gossip.signatures_accepted == b.gossip.signatures_accepted;
}

}  // namespace

int main() {
  const char* threads_env = std::getenv("RANGEAMP_THREADS");
  const int threads = threads_env && *threads_env ? std::atoi(threads_env) : 1;

  core::Table table(
      {"row", "gossip", "fanout", "rotation", "loss", "churn_s",
       "pattern_quarantine", "legit_requests", "attack_requests",
       "legit_quarantined", "attack_quarantined", "collateral_rate",
       "legit_hit_rate", "convergence_exchange", "convergence_rotations",
       "detection_latency_s", "alarms", "final_coverage",
       "signatures_expired", "gossip_rounds", "gossip_msgs_sent",
       "gossip_msgs_dropped", "gossip_sigs_sent", "gossip_sigs_accepted"});

  bool clean = true;
  std::size_t gossip_off_attack_quarantined = 0;
  std::size_t best_gossip_attack_quarantined = 0;

  for (const Row& row : kRows) {
    const core::GossipDetectionConfig config = row_config(row, threads);
    const core::GossipDetectionResult r =
        core::run_gossip_detection_campaign(config);

    table.add_row(
        {row.label, row.gossip ? "on" : "off", std::to_string(row.fanout),
         std::to_string(row.rotation), core::fixed(row.loss, 2),
         core::fixed(row.churn_seconds, 2), row.pattern_quarantine ? "1" : "0",
         std::to_string(r.legit_requests), std::to_string(r.attack_requests),
         std::to_string(r.legit_quarantined),
         std::to_string(r.attack_quarantined),
         core::fixed(r.collateral_rate, 6), core::fixed(r.legit_hit_rate, 4),
         std::to_string(r.convergence_exchange),
         core::fixed(r.convergence_rotations, 2),
         core::fixed(r.detection_latency_seconds, 3), std::to_string(r.alarms),
         std::to_string(r.final_coverage),
         std::to_string(r.signatures_expired), std::to_string(r.gossip.rounds),
         std::to_string(r.gossip.messages_sent),
         std::to_string(r.gossip.messages_dropped),
         std::to_string(r.gossip.signatures_sent),
         std::to_string(r.gossip.signatures_accepted)});

    // I1: every gossip-on row with an attacker converges, fast.
    if (row.detection && row.gossip && row.attacker) {
      if (r.convergence_exchange < 0) {
        std::fprintf(stderr, "I1 failed: row %s never converged\n", row.label);
        clean = false;
      } else if (r.detection_latency_seconds > kMaxLatencySeconds ||
                 r.convergence_rotations > kMaxRotations) {
        std::fprintf(stderr,
                     "I1 failed: row %s converged too slowly (%.3f s, %.2f "
                     "rotations)\n",
                     row.label, r.detection_latency_seconds,
                     r.convergence_rotations);
        clean = false;
      }
      best_gossip_attack_quarantined =
          std::max(best_gossip_attack_quarantined, r.attack_quarantined);
    }

    // I2: per-node detection alone must NOT reach cluster-wide quarantine --
    // the signature TTL expires between attacker visits to a node.
    if (row.detection && !row.gossip && row.attacker) {
      if (r.convergence_exchange >= 0 ||
          r.final_coverage >= config.edge_nodes) {
        std::fprintf(stderr,
                     "I2 failed: gossip-off converged (exchange %lld, "
                     "coverage %zu/%zu)\n",
                     static_cast<long long>(r.convergence_exchange),
                     r.final_coverage, config.edge_nodes);
        clean = false;
      }
      gossip_off_attack_quarantined = r.attack_quarantined;
    }

    // I3: collateral bounds.
    if (r.collateral_rate > kMaxCollateral) {
      std::fprintf(stderr, "I3 failed: row %s collateral %.6f > %.2f\n",
                   row.label, r.collateral_rate, kMaxCollateral);
      clean = false;
    }
    if (!row.pattern_quarantine && r.legit_quarantined != 0) {
      std::fprintf(stderr,
                   "I3 failed: row %s quarantined %zu legit requests without "
                   "pattern quarantine\n",
                   row.label, r.legit_quarantined);
      clean = false;
    }
    if (!row.attacker && (r.alarms != 0 || r.legit_quarantined != 0 ||
                          r.attack_quarantined != 0)) {
      std::fprintf(stderr,
                   "I3 failed: no-attacker row alarmed (%llu) or quarantined "
                   "(%zu legit)\n",
                   static_cast<unsigned long long>(r.alarms),
                   r.legit_quarantined);
      clean = false;
    }
  }

  // I4: gossip protects more of the attack stream than isolated detection.
  if (best_gossip_attack_quarantined <= gossip_off_attack_quarantined) {
    std::fprintf(stderr,
                 "I4 failed: gossip quarantined %zu attack requests, "
                 "gossip-off %zu\n",
                 best_gossip_attack_quarantined,
                 gossip_off_attack_quarantined);
    clean = false;
  }

  // I5: serial and sharded schedule materialization must agree exactly.
  {
    core::GossipDetectionConfig serial = row_config(kRows[3], 1);
    serial.shards = 1;
    core::GossipDetectionConfig sharded = row_config(kRows[3], threads);
    sharded.shards = 8;
    const core::GossipDetectionResult a =
        core::run_gossip_detection_campaign(serial);
    const core::GossipDetectionResult b =
        core::run_gossip_detection_campaign(sharded);
    if (!results_equal(a, b)) {
      std::fprintf(stderr, "I5 failed: serial vs sharded replay diverged\n");
      clean = false;
    }
  }

  std::fputs(table.to_markdown().c_str(), stdout);
  if (!core::write_file("gossip_detection.csv", table.to_csv())) {
    std::fprintf(stderr, "failed to write gossip_detection.csv\n");
    return 1;
  }
  std::printf("\nwrote gossip_detection.csv\n");

  if (const char* env = std::getenv("RANGEAMP_METRICS");
      env && std::string_view{env} == "1") {
    obs::MetricsRegistry metrics;
    core::GossipDetectionConfig config = row_config(kRows[3], threads);
    config.metrics = &metrics;
    (void)core::run_gossip_detection_campaign(config);
    if (!core::write_file("gossip_detection_metrics.prom",
                          metrics.to_prometheus())) {
      std::fprintf(stderr, "failed to write gossip_detection_metrics.prom\n");
      return 1;
    }
    std::printf("wrote gossip_detection_metrics.prom\n");
  }

  if (!clean) {
    std::fprintf(stderr, "gossip-detection invariant violations -- see above\n");
    return 1;
  }
  std::printf("all gossip-detection invariants held across %zu rows\n",
              std::size(kRows));
  return 0;
}
