# Empty dependencies file for origin_tests.
# This may be replaced when dependencies are built.
