file(REMOVE_RECURSE
  "CMakeFiles/origin_tests.dir/origin/origin_server_test.cc.o"
  "CMakeFiles/origin_tests.dir/origin/origin_server_test.cc.o.d"
  "origin_tests"
  "origin_tests.pdb"
  "origin_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origin_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
