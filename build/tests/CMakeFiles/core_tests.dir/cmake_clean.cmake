file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/autoplan_test.cc.o"
  "CMakeFiles/core_tests.dir/core/autoplan_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/detector_campaign_cost_test.cc.o"
  "CMakeFiles/core_tests.dir/core/detector_campaign_cost_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mitigations_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mitigations_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/obr_test.cc.o"
  "CMakeFiles/core_tests.dir/core/obr_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/sbr_test.cc.o"
  "CMakeFiles/core_tests.dir/core/sbr_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/scanner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/scanner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/testbed_report_test.cc.o"
  "CMakeFiles/core_tests.dir/core/testbed_report_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
