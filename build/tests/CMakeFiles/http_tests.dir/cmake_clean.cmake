file(REMOVE_RECURSE
  "CMakeFiles/http_tests.dir/http/body_test.cc.o"
  "CMakeFiles/http_tests.dir/http/body_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/chunked_test.cc.o"
  "CMakeFiles/http_tests.dir/http/chunked_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/date_test.cc.o"
  "CMakeFiles/http_tests.dir/http/date_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/fuzz_test.cc.o"
  "CMakeFiles/http_tests.dir/http/fuzz_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/generator_test.cc.o"
  "CMakeFiles/http_tests.dir/http/generator_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/headers_test.cc.o"
  "CMakeFiles/http_tests.dir/http/headers_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/message_test.cc.o"
  "CMakeFiles/http_tests.dir/http/message_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/multipart_test.cc.o"
  "CMakeFiles/http_tests.dir/http/multipart_test.cc.o.d"
  "CMakeFiles/http_tests.dir/http/range_test.cc.o"
  "CMakeFiles/http_tests.dir/http/range_test.cc.o.d"
  "http_tests"
  "http_tests.pdb"
  "http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
