# Empty compiler generated dependencies file for http_tests.
# This may be replaced when dependencies are built.
