file(REMOVE_RECURSE
  "CMakeFiles/http2_tests.dir/http2/frame_session_test.cc.o"
  "CMakeFiles/http2_tests.dir/http2/frame_session_test.cc.o.d"
  "CMakeFiles/http2_tests.dir/http2/hpack_test.cc.o"
  "CMakeFiles/http2_tests.dir/http2/hpack_test.cc.o.d"
  "http2_tests"
  "http2_tests.pdb"
  "http2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
