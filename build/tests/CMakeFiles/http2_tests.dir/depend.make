# Empty dependencies file for http2_tests.
# This may be replaced when dependencies are built.
