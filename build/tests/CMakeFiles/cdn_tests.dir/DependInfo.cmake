
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cdn/cache_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/cache_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/cache_test.cc.o.d"
  "/root/repo/tests/cdn/cluster_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/cluster_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/cluster_test.cc.o.d"
  "/root/repo/tests/cdn/limits_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/limits_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/limits_test.cc.o.d"
  "/root/repo/tests/cdn/node_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/node_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/node_test.cc.o.d"
  "/root/repo/tests/cdn/profiles_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/profiles_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/profiles_test.cc.o.d"
  "/root/repo/tests/cdn/revalidation_router_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/revalidation_router_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/revalidation_router_test.cc.o.d"
  "/root/repo/tests/cdn/rules_test.cc" "tests/CMakeFiles/cdn_tests.dir/cdn/rules_test.cc.o" "gcc" "tests/CMakeFiles/cdn_tests.dir/cdn/rules_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rangeamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/rangeamp_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/rangeamp_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/origin/CMakeFiles/rangeamp_origin.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rangeamp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
