file(REMOVE_RECURSE
  "CMakeFiles/cdn_tests.dir/cdn/cache_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/cache_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/cluster_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/cluster_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/limits_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/limits_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/node_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/node_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/profiles_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/profiles_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/revalidation_router_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/revalidation_router_test.cc.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/rules_test.cc.o"
  "CMakeFiles/cdn_tests.dir/cdn/rules_test.cc.o.d"
  "cdn_tests"
  "cdn_tests.pdb"
  "cdn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
