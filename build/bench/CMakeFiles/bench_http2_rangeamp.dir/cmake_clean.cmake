file(REMOVE_RECURSE
  "CMakeFiles/bench_http2_rangeamp.dir/bench_http2_rangeamp.cc.o"
  "CMakeFiles/bench_http2_rangeamp.dir/bench_http2_rangeamp.cc.o.d"
  "bench_http2_rangeamp"
  "bench_http2_rangeamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_http2_rangeamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
