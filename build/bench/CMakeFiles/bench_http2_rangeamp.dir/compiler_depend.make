# Empty compiler generated dependencies file for bench_http2_rangeamp.
# This may be replaced when dependencies are built.
