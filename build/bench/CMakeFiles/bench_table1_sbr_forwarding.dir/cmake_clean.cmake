file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sbr_forwarding.dir/bench_table1_sbr_forwarding.cc.o"
  "CMakeFiles/bench_table1_sbr_forwarding.dir/bench_table1_sbr_forwarding.cc.o.d"
  "bench_table1_sbr_forwarding"
  "bench_table1_sbr_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sbr_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
