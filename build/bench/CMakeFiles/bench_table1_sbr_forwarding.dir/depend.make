# Empty dependencies file for bench_table1_sbr_forwarding.
# This may be replaced when dependencies are built.
