
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_collateral_damage.cc" "bench/CMakeFiles/bench_collateral_damage.dir/bench_collateral_damage.cc.o" "gcc" "bench/CMakeFiles/bench_collateral_damage.dir/bench_collateral_damage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rangeamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/rangeamp_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/rangeamp_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/origin/CMakeFiles/rangeamp_origin.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rangeamp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
