# Empty compiler generated dependencies file for bench_collateral_damage.
# This may be replaced when dependencies are built.
