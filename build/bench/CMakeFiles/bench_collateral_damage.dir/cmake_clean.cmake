file(REMOVE_RECURSE
  "CMakeFiles/bench_collateral_damage.dir/bench_collateral_damage.cc.o"
  "CMakeFiles/bench_collateral_damage.dir/bench_collateral_damage.cc.o.d"
  "bench_collateral_damage"
  "bench_collateral_damage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collateral_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
