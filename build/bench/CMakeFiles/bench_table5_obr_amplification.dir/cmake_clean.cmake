file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_obr_amplification.dir/bench_table5_obr_amplification.cc.o"
  "CMakeFiles/bench_table5_obr_amplification.dir/bench_table5_obr_amplification.cc.o.d"
  "bench_table5_obr_amplification"
  "bench_table5_obr_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_obr_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
