# Empty compiler generated dependencies file for bench_table5_obr_amplification.
# This may be replaced when dependencies are built.
