file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_obr_forwarding.dir/bench_table2_obr_forwarding.cc.o"
  "CMakeFiles/bench_table2_obr_forwarding.dir/bench_table2_obr_forwarding.cc.o.d"
  "bench_table2_obr_forwarding"
  "bench_table2_obr_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_obr_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
