# Empty dependencies file for bench_table2_obr_forwarding.
# This may be replaced when dependencies are built.
