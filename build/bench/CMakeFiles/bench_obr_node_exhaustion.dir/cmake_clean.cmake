file(REMOVE_RECURSE
  "CMakeFiles/bench_obr_node_exhaustion.dir/bench_obr_node_exhaustion.cc.o"
  "CMakeFiles/bench_obr_node_exhaustion.dir/bench_obr_node_exhaustion.cc.o.d"
  "bench_obr_node_exhaustion"
  "bench_obr_node_exhaustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obr_node_exhaustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
