# Empty compiler generated dependencies file for bench_obr_node_exhaustion.
# This may be replaced when dependencies are built.
