file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fig6_sbr_amplification.dir/bench_table4_fig6_sbr_amplification.cc.o"
  "CMakeFiles/bench_table4_fig6_sbr_amplification.dir/bench_table4_fig6_sbr_amplification.cc.o.d"
  "bench_table4_fig6_sbr_amplification"
  "bench_table4_fig6_sbr_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fig6_sbr_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
