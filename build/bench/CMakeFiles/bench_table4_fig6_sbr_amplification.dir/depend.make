# Empty dependencies file for bench_table4_fig6_sbr_amplification.
# This may be replaced when dependencies are built.
