file(REMOVE_RECURSE
  "CMakeFiles/bench_practicability.dir/bench_practicability.cc.o"
  "CMakeFiles/bench_practicability.dir/bench_practicability.cc.o.d"
  "bench_practicability"
  "bench_practicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_practicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
