# Empty compiler generated dependencies file for bench_practicability.
# This may be replaced when dependencies are built.
