file(REMOVE_RECURSE
  "CMakeFiles/bench_feasibility_corpus.dir/bench_feasibility_corpus.cc.o"
  "CMakeFiles/bench_feasibility_corpus.dir/bench_feasibility_corpus.cc.o.d"
  "bench_feasibility_corpus"
  "bench_feasibility_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feasibility_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
