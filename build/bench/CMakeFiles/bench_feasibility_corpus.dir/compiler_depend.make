# Empty compiler generated dependencies file for bench_feasibility_corpus.
# This may be replaced when dependencies are built.
