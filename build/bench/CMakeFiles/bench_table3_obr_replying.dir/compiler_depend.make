# Empty compiler generated dependencies file for bench_table3_obr_replying.
# This may be replaced when dependencies are built.
