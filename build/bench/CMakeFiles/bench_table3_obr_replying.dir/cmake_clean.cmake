file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_obr_replying.dir/bench_table3_obr_replying.cc.o"
  "CMakeFiles/bench_table3_obr_replying.dir/bench_table3_obr_replying.cc.o.d"
  "bench_table3_obr_replying"
  "bench_table3_obr_replying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_obr_replying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
