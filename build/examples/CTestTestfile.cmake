# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sbr_attack_demo "/root/repo/build/examples/sbr_attack_demo" "0" "5" "5")
set_tests_properties(example_sbr_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_obr_attack_demo "/root/repo/build/examples/obr_attack_demo")
set_tests_properties(example_obr_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scanner_demo "/root/repo/build/examples/scanner_demo" "3" "35")
set_tests_properties(example_scanner_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mitigation_demo "/root/repo/build/examples/mitigation_demo")
set_tests_properties(example_mitigation_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_trace "/root/repo/build/examples/protocol_trace")
set_tests_properties(example_protocol_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_help "/root/repo/build/examples/rangeamp_cli" "help")
set_tests_properties(example_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_sbr "/root/repo/build/examples/rangeamp_cli" "sbr" "8" "10")
set_tests_properties(example_cli_sbr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_autoplan "/root/repo/build/examples/rangeamp_cli" "autoplan" "0" "10")
set_tests_properties(example_cli_autoplan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_spec_vulnerable "/root/repo/build/examples/rangeamp_cli" "spec" "/root/repo/examples/specs/naive_cdn.spec" "10")
set_tests_properties(example_cli_spec_vulnerable PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_spec_hardened "/root/repo/build/examples/rangeamp_cli" "spec" "/root/repo/examples/specs/hardened_cdn.spec" "10")
set_tests_properties(example_cli_spec_hardened PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
