# Empty compiler generated dependencies file for sbr_attack_demo.
# This may be replaced when dependencies are built.
