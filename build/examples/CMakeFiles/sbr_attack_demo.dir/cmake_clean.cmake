file(REMOVE_RECURSE
  "CMakeFiles/sbr_attack_demo.dir/sbr_attack_demo.cpp.o"
  "CMakeFiles/sbr_attack_demo.dir/sbr_attack_demo.cpp.o.d"
  "sbr_attack_demo"
  "sbr_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
