# Empty dependencies file for scanner_demo.
# This may be replaced when dependencies are built.
