file(REMOVE_RECURSE
  "CMakeFiles/scanner_demo.dir/scanner_demo.cpp.o"
  "CMakeFiles/scanner_demo.dir/scanner_demo.cpp.o.d"
  "scanner_demo"
  "scanner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
