# Empty compiler generated dependencies file for obr_attack_demo.
# This may be replaced when dependencies are built.
