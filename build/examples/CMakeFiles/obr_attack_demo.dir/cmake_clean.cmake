file(REMOVE_RECURSE
  "CMakeFiles/obr_attack_demo.dir/obr_attack_demo.cpp.o"
  "CMakeFiles/obr_attack_demo.dir/obr_attack_demo.cpp.o.d"
  "obr_attack_demo"
  "obr_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obr_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
