# Empty compiler generated dependencies file for rangeamp_cli.
# This may be replaced when dependencies are built.
