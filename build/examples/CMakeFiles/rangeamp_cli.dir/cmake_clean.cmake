file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_cli.dir/rangeamp_cli.cpp.o"
  "CMakeFiles/rangeamp_cli.dir/rangeamp_cli.cpp.o.d"
  "rangeamp_cli"
  "rangeamp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
