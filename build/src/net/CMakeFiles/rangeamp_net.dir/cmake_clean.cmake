file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_net.dir/transcript.cc.o"
  "CMakeFiles/rangeamp_net.dir/transcript.cc.o.d"
  "CMakeFiles/rangeamp_net.dir/wire.cc.o"
  "CMakeFiles/rangeamp_net.dir/wire.cc.o.d"
  "librangeamp_net.a"
  "librangeamp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
