file(REMOVE_RECURSE
  "librangeamp_net.a"
)
