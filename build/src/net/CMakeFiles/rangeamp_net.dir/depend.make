# Empty dependencies file for rangeamp_net.
# This may be replaced when dependencies are built.
