file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_sim.dir/attack_load.cc.o"
  "CMakeFiles/rangeamp_sim.dir/attack_load.cc.o.d"
  "CMakeFiles/rangeamp_sim.dir/des.cc.o"
  "CMakeFiles/rangeamp_sim.dir/des.cc.o.d"
  "CMakeFiles/rangeamp_sim.dir/fluid.cc.o"
  "CMakeFiles/rangeamp_sim.dir/fluid.cc.o.d"
  "librangeamp_sim.a"
  "librangeamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
