file(REMOVE_RECURSE
  "librangeamp_sim.a"
)
