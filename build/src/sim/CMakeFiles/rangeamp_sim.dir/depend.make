# Empty dependencies file for rangeamp_sim.
# This may be replaced when dependencies are built.
