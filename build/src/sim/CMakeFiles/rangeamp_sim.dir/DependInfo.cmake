
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack_load.cc" "src/sim/CMakeFiles/rangeamp_sim.dir/attack_load.cc.o" "gcc" "src/sim/CMakeFiles/rangeamp_sim.dir/attack_load.cc.o.d"
  "/root/repo/src/sim/des.cc" "src/sim/CMakeFiles/rangeamp_sim.dir/des.cc.o" "gcc" "src/sim/CMakeFiles/rangeamp_sim.dir/des.cc.o.d"
  "/root/repo/src/sim/fluid.cc" "src/sim/CMakeFiles/rangeamp_sim.dir/fluid.cc.o" "gcc" "src/sim/CMakeFiles/rangeamp_sim.dir/fluid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
