file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_core.dir/autoplan.cc.o"
  "CMakeFiles/rangeamp_core.dir/autoplan.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/campaign.cc.o"
  "CMakeFiles/rangeamp_core.dir/campaign.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/cost.cc.o"
  "CMakeFiles/rangeamp_core.dir/cost.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/detector.cc.o"
  "CMakeFiles/rangeamp_core.dir/detector.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/mitigations.cc.o"
  "CMakeFiles/rangeamp_core.dir/mitigations.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/obr.cc.o"
  "CMakeFiles/rangeamp_core.dir/obr.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/report.cc.o"
  "CMakeFiles/rangeamp_core.dir/report.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/sbr.cc.o"
  "CMakeFiles/rangeamp_core.dir/sbr.cc.o.d"
  "CMakeFiles/rangeamp_core.dir/scanner.cc.o"
  "CMakeFiles/rangeamp_core.dir/scanner.cc.o.d"
  "librangeamp_core.a"
  "librangeamp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
