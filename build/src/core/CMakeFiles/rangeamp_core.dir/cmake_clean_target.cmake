file(REMOVE_RECURSE
  "librangeamp_core.a"
)
