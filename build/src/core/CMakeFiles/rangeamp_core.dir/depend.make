# Empty dependencies file for rangeamp_core.
# This may be replaced when dependencies are built.
