
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autoplan.cc" "src/core/CMakeFiles/rangeamp_core.dir/autoplan.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/autoplan.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/rangeamp_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/rangeamp_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/cost.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/rangeamp_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/detector.cc.o.d"
  "/root/repo/src/core/mitigations.cc" "src/core/CMakeFiles/rangeamp_core.dir/mitigations.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/mitigations.cc.o.d"
  "/root/repo/src/core/obr.cc" "src/core/CMakeFiles/rangeamp_core.dir/obr.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/obr.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/rangeamp_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/report.cc.o.d"
  "/root/repo/src/core/sbr.cc" "src/core/CMakeFiles/rangeamp_core.dir/sbr.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/sbr.cc.o.d"
  "/root/repo/src/core/scanner.cc" "src/core/CMakeFiles/rangeamp_core.dir/scanner.cc.o" "gcc" "src/core/CMakeFiles/rangeamp_core.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/rangeamp_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/rangeamp_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/origin/CMakeFiles/rangeamp_origin.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rangeamp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
