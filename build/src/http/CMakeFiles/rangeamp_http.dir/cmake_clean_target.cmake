file(REMOVE_RECURSE
  "librangeamp_http.a"
)
