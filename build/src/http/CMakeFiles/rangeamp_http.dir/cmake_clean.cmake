file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_http.dir/body.cc.o"
  "CMakeFiles/rangeamp_http.dir/body.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/chunked.cc.o"
  "CMakeFiles/rangeamp_http.dir/chunked.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/date.cc.o"
  "CMakeFiles/rangeamp_http.dir/date.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/generator.cc.o"
  "CMakeFiles/rangeamp_http.dir/generator.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/headers.cc.o"
  "CMakeFiles/rangeamp_http.dir/headers.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/message.cc.o"
  "CMakeFiles/rangeamp_http.dir/message.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/multipart.cc.o"
  "CMakeFiles/rangeamp_http.dir/multipart.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/range.cc.o"
  "CMakeFiles/rangeamp_http.dir/range.cc.o.d"
  "CMakeFiles/rangeamp_http.dir/serialize.cc.o"
  "CMakeFiles/rangeamp_http.dir/serialize.cc.o.d"
  "librangeamp_http.a"
  "librangeamp_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
