
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/body.cc" "src/http/CMakeFiles/rangeamp_http.dir/body.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/body.cc.o.d"
  "/root/repo/src/http/chunked.cc" "src/http/CMakeFiles/rangeamp_http.dir/chunked.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/chunked.cc.o.d"
  "/root/repo/src/http/date.cc" "src/http/CMakeFiles/rangeamp_http.dir/date.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/date.cc.o.d"
  "/root/repo/src/http/generator.cc" "src/http/CMakeFiles/rangeamp_http.dir/generator.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/generator.cc.o.d"
  "/root/repo/src/http/headers.cc" "src/http/CMakeFiles/rangeamp_http.dir/headers.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/headers.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/rangeamp_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/message.cc.o.d"
  "/root/repo/src/http/multipart.cc" "src/http/CMakeFiles/rangeamp_http.dir/multipart.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/multipart.cc.o.d"
  "/root/repo/src/http/range.cc" "src/http/CMakeFiles/rangeamp_http.dir/range.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/range.cc.o.d"
  "/root/repo/src/http/serialize.cc" "src/http/CMakeFiles/rangeamp_http.dir/serialize.cc.o" "gcc" "src/http/CMakeFiles/rangeamp_http.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
