# Empty compiler generated dependencies file for rangeamp_http.
# This may be replaced when dependencies are built.
