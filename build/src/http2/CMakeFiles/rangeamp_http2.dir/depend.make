# Empty dependencies file for rangeamp_http2.
# This may be replaced when dependencies are built.
