file(REMOVE_RECURSE
  "librangeamp_http2.a"
)
