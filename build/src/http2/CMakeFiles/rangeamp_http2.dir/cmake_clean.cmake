file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_http2.dir/frame.cc.o"
  "CMakeFiles/rangeamp_http2.dir/frame.cc.o.d"
  "CMakeFiles/rangeamp_http2.dir/hpack.cc.o"
  "CMakeFiles/rangeamp_http2.dir/hpack.cc.o.d"
  "CMakeFiles/rangeamp_http2.dir/session.cc.o"
  "CMakeFiles/rangeamp_http2.dir/session.cc.o.d"
  "CMakeFiles/rangeamp_http2.dir/wire.cc.o"
  "CMakeFiles/rangeamp_http2.dir/wire.cc.o.d"
  "librangeamp_http2.a"
  "librangeamp_http2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
