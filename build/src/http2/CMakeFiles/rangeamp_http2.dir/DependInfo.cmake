
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http2/frame.cc" "src/http2/CMakeFiles/rangeamp_http2.dir/frame.cc.o" "gcc" "src/http2/CMakeFiles/rangeamp_http2.dir/frame.cc.o.d"
  "/root/repo/src/http2/hpack.cc" "src/http2/CMakeFiles/rangeamp_http2.dir/hpack.cc.o" "gcc" "src/http2/CMakeFiles/rangeamp_http2.dir/hpack.cc.o.d"
  "/root/repo/src/http2/session.cc" "src/http2/CMakeFiles/rangeamp_http2.dir/session.cc.o" "gcc" "src/http2/CMakeFiles/rangeamp_http2.dir/session.cc.o.d"
  "/root/repo/src/http2/wire.cc" "src/http2/CMakeFiles/rangeamp_http2.dir/wire.cc.o" "gcc" "src/http2/CMakeFiles/rangeamp_http2.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
