
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/origin/origin_server.cc" "src/origin/CMakeFiles/rangeamp_origin.dir/origin_server.cc.o" "gcc" "src/origin/CMakeFiles/rangeamp_origin.dir/origin_server.cc.o.d"
  "/root/repo/src/origin/resource_store.cc" "src/origin/CMakeFiles/rangeamp_origin.dir/resource_store.cc.o" "gcc" "src/origin/CMakeFiles/rangeamp_origin.dir/resource_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
