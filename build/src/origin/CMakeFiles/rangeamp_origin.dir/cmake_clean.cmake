file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_origin.dir/origin_server.cc.o"
  "CMakeFiles/rangeamp_origin.dir/origin_server.cc.o.d"
  "CMakeFiles/rangeamp_origin.dir/resource_store.cc.o"
  "CMakeFiles/rangeamp_origin.dir/resource_store.cc.o.d"
  "librangeamp_origin.a"
  "librangeamp_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
