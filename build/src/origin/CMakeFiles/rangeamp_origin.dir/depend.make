# Empty dependencies file for rangeamp_origin.
# This may be replaced when dependencies are built.
