file(REMOVE_RECURSE
  "librangeamp_origin.a"
)
