file(REMOVE_RECURSE
  "CMakeFiles/rangeamp_cdn.dir/cache.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/cache.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/cluster.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/cluster.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/limits.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/limits.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/logic.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/logic.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/node.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/node.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/profiles.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/profiles.cc.o.d"
  "CMakeFiles/rangeamp_cdn.dir/rules.cc.o"
  "CMakeFiles/rangeamp_cdn.dir/rules.cc.o.d"
  "librangeamp_cdn.a"
  "librangeamp_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangeamp_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
