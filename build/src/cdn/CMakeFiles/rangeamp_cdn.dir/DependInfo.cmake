
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/cache.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/cache.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/cache.cc.o.d"
  "/root/repo/src/cdn/cluster.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/cluster.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/cluster.cc.o.d"
  "/root/repo/src/cdn/limits.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/limits.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/limits.cc.o.d"
  "/root/repo/src/cdn/logic.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/logic.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/logic.cc.o.d"
  "/root/repo/src/cdn/node.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/node.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/node.cc.o.d"
  "/root/repo/src/cdn/profiles.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/profiles.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/profiles.cc.o.d"
  "/root/repo/src/cdn/rules.cc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/rules.cc.o" "gcc" "src/cdn/CMakeFiles/rangeamp_cdn.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/rangeamp_http.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/rangeamp_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rangeamp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
