# Empty compiler generated dependencies file for rangeamp_cdn.
# This may be replaced when dependencies are built.
