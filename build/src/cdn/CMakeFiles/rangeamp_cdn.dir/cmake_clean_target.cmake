file(REMOVE_RECURSE
  "librangeamp_cdn.a"
)
