// Scanner demo: audit a CDN's range-request handling the way the paper's
// first experiment did (section V-A).
//
// Sends an ABNF-generated corpus of valid range requests through one vendor
// profile and reports, per request shape, how the Range header reached the
// origin -- unchanged (Laziness), removed (Deletion) or rewritten
// (Expansion) -- plus the multi-connection patterns.
//
// Usage: scanner_demo [vendor-index 0..12] [corpus-size]
#include <cstdio>
#include <cstdlib>

#include "core/rangeamp.h"

using namespace rangeamp;

int main(int argc, char** argv) {
  const int vendor_index = argc > 1 ? std::atoi(argv[1]) : 0;  // Akamai
  const std::size_t corpus =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 140;
  if (vendor_index < 0 || vendor_index >= 13) {
    std::fprintf(stderr, "vendor-index must be 0..12\n");
    return 2;
  }
  const cdn::Vendor vendor = cdn::kAllVendors[static_cast<std::size_t>(vendor_index)];

  std::printf("Scanning %s with %zu generated range requests...\n\n",
              std::string{cdn::vendor_name(vendor)}.c_str(), corpus);

  const auto rows = core::scan_corpus(vendor, /*seed=*/2020, corpus, 1u << 20);
  core::Table table({"Request shape", "probes", "Laziness", "Deletion",
                     "Expansion", ">1 origin conn"});
  for (const auto& row : rows) {
    table.add_row({std::string{http::shape_name(row.shape)},
                   std::to_string(row.total), std::to_string(row.lazy),
                   std::to_string(row.deleted), std::to_string(row.expanded),
                   std::to_string(row.multi_connection)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("Targeted probes (Tables I/II shapes):\n\n");
  core::Table detail({"Probe", "Sent", "Origin saw", "SBR?", "OBR fwd?"});
  for (const auto& obs : core::scan_forwarding(vendor, {}, {1u << 20})) {
    detail.add_row({obs.probe_label,
                    obs.sent_range.size() > 28 ? obs.sent_range.substr(0, 25) + "..."
                                               : obs.sent_range,
                    obs.first_request.summary(), obs.sbr_vulnerable ? "YES" : "no",
                    obs.obr_forward_vulnerable ? "YES" : "no"});
  }
  std::printf("%s", detail.to_markdown().c_str());
  return 0;
}
