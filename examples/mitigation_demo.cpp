// Mitigation demo: harden a vulnerable CDN profile with each section VI-C
// countermeasure and watch the attacks die.
#include <cstdio>
#include <optional>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

double run_sbr(std::optional<core::Mitigation> mitigation) {
  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kGcoreLabs);
  if (mitigation) profile = core::apply_mitigation(std::move(profile), *mitigation);
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/big.iso", 10u << 20);
  auto request = http::make_get("dl.example.com", "/big.iso?cb=7");
  request.headers.add("Range", "bytes=0-0");
  bed.send(request);
  return static_cast<double>(bed.origin_traffic().response_bytes()) /
         static_cast<double>(bed.client_traffic().response_bytes());
}

}  // namespace

int main() {
  std::printf("Hardening a Deletion-policy CDN (G-Core profile) against SBR\n\n");
  std::printf("%-28s SBR amplification\n", "configuration");
  std::printf("%-28s %14.1fx\n", "vulnerable baseline", run_sbr(std::nullopt));
  for (const auto m :
       {core::Mitigation::kLaziness, core::Mitigation::kBoundedExpansion8K}) {
    std::printf("%-28s %14.1fx\n", std::string{core::mitigation_name(m)}.c_str(),
                run_sbr(m));
  }

  std::printf("\nLaziness removes the asymmetry entirely (at the cost of not\n"
              "caching ranged objects); bounded expansion keeps the caching\n"
              "benefit while capping the origin's exposure at ~8 KB per hit.\n\n");

  // Verify a legitimate ranged client still works under the mitigations.
  cdn::VendorProfile hardened = core::apply_mitigation(
      cdn::make_profile(cdn::Vendor::kGcoreLabs),
      core::Mitigation::kBoundedExpansion8K);
  core::SingleCdnTestbed bed(std::move(hardened));
  bed.origin().resources().add_synthetic("/big.iso", 10u << 20);
  auto request = http::make_get("dl.example.com", "/big.iso");
  request.headers.add("Range", "bytes=1048576-2097151");
  const auto response = bed.send(request);
  std::printf("Legit download range under mitigation: %d %s, %llu bytes  [OK]\n",
              response.status,
              std::string{response.headers.get_or("Content-Range", "?")}.c_str(),
              static_cast<unsigned long long>(response.body.size()));
  return 0;
}
