// SBR attack demo: the section IV-B scenario end-to-end.
//
// An attacker targets a website hosted behind a vulnerable CDN.  Each
// crafted request carries "Range: bytes=0-0" and a fresh cache-busting query
// string; the CDN's Deletion policy pulls the full resource from the origin
// every time, while the attacker receives a few hundred bytes.
//
// Usage: sbr_attack_demo [vendor-index 0..12] [file-size-mb] [requests]
#include <cstdio>
#include <cstdlib>

#include "core/rangeamp.h"

using namespace rangeamp;

int main(int argc, char** argv) {
  const int vendor_index = argc > 1 ? std::atoi(argv[1]) : 5;  // Cloudflare
  const std::uint64_t size_mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const int requests = argc > 3 ? std::atoi(argv[3]) : 20;
  if (vendor_index < 0 || vendor_index >= 13) {
    std::fprintf(stderr, "vendor-index must be 0..12\n");
    return 2;
  }
  const cdn::Vendor vendor = cdn::kAllVendors[static_cast<std::size_t>(vendor_index)];

  std::printf("SBR attack: %d requests against %s, %llu MB target\n\n", requests,
              std::string{cdn::vendor_name(vendor)}.c_str(),
              static_cast<unsigned long long>(size_mb));

  core::SingleCdnTestbed bed(cdn::make_profile(vendor));
  bed.origin().resources().add_synthetic("/video/launch-teaser.mp4",
                                         size_mb << 20, "video/mp4");

  const core::SbrPlan plan = core::sbr_plan(vendor, size_mb << 20);
  std::printf("Exploited range case: %s (%d send(s) per unit)\n\n",
              plan.description.c_str(), plan.sends);

  for (int i = 0; i < requests; ++i) {
    // Fresh query string => guaranteed cache miss (section II-A).
    auto request = http::make_get(
        "victim-shop.example.com",
        "/video/launch-teaser.mp4?r=" + std::to_string(1000 + i));
    request.headers.add("Range", plan.range.to_string());
    for (int s = 0; s < plan.sends; ++s) bed.send(request);
  }

  const auto attacker = bed.client_traffic().response_bytes();
  const auto origin = bed.origin_traffic().response_bytes();
  std::printf("attacker received : %12llu B (%.1f KB)\n",
              static_cast<unsigned long long>(attacker), attacker / 1024.0);
  std::printf("origin sent       : %12llu B (%.1f MB)\n",
              static_cast<unsigned long long>(origin), origin / 1048576.0);
  std::printf("amplification     : %.0fx\n",
              static_cast<double>(origin) / static_cast<double>(attacker));
  std::printf("\nThe CDN absorbed none of this: every request was a cache miss,\n"
              "and the origin's outgoing bandwidth paid for all of it.\n");
  return 0;
}
