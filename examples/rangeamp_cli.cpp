// rangeamp_cli: the RangeAmp toolkit as a command-line tool.
//
// Subcommands:
//   scan  [vendor]                audit range-forwarding + replying policies
//   sbr   [vendor] [size-mb]      one SBR measurement (Table IV cell)
//   obr   [fcdn] [bcdn]           one OBR measurement (Table V row)
//   campaign [vendor] [rps] [s]   sustained SBR campaign + detection + cost
//   vendors                       list vendor indices
//
// Everything runs against the simulated substrate; see README.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cdn/rules.h"
#include "core/autoplan.h"
#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

cdn::Vendor vendor_arg(const char* arg, cdn::Vendor fallback) {
  if (arg == nullptr) return fallback;
  const int index = std::atoi(arg);
  if (index >= 0 && index < static_cast<int>(cdn::kAllVendors.size())) {
    return cdn::kAllVendors[static_cast<std::size_t>(index)];
  }
  for (const cdn::Vendor v : cdn::kAllVendors) {
    if (cdn::vendor_name(v) == std::string_view{arg}) return v;
  }
  std::fprintf(stderr, "unknown vendor '%s'; run 'rangeamp_cli vendors'\n", arg);
  std::exit(2);
}

int cmd_vendors() {
  for (std::size_t i = 0; i < cdn::kAllVendors.size(); ++i) {
    std::printf("%2zu  %s\n", i,
                std::string{cdn::vendor_name(cdn::kAllVendors[i])}.c_str());
  }
  return 0;
}

int cmd_scan(cdn::Vendor vendor) {
  std::printf("Forwarding policies of %s (probes at 1 MB and 12 MB):\n\n",
              std::string{cdn::vendor_name(vendor)}.c_str());
  core::Table table({"probe", "file", "origin saw", "SBR?", "OBR fwd?"});
  for (const auto& obs :
       core::scan_forwarding(vendor, {}, {1u << 20, 12u << 20})) {
    table.add_row({obs.probe_label,
                   std::to_string(obs.file_size >> 20) + "MB",
                   obs.first_request.summary(),
                   obs.sbr_vulnerable ? "YES" : "no",
                   obs.obr_forward_vulnerable ? "YES" : "no"});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  const auto reply = core::scan_replying(vendor);
  std::printf("Multi-range reply (BCDN role): %s -> %s\n",
              reply.response_format.c_str(),
              reply.obr_reply_vulnerable ? "OBR-VULNERABLE" : "guarded");
  return 0;
}

int cmd_sbr(cdn::Vendor vendor, std::uint64_t size_mb) {
  const auto m = core::measure_sbr(vendor, size_mb << 20);
  std::printf("SBR against %s, %llu MB target (case %s):\n",
              std::string{cdn::vendor_name(vendor)}.c_str(),
              static_cast<unsigned long long>(size_mb), m.exploited_case.c_str());
  std::printf("  client received : %8llu B\n",
              static_cast<unsigned long long>(m.client_response_bytes));
  std::printf("  origin sent     : %8llu B\n",
              static_cast<unsigned long long>(m.origin_response_bytes));
  std::printf("  amplification   : %8.0fx\n", m.amplification);
  return 0;
}

int cmd_obr(cdn::Vendor fcdn, cdn::Vendor bcdn) {
  const auto m = core::measure_obr(fcdn, bcdn);
  if (!m.feasible) {
    std::printf("cascade %s->%s infeasible (self-cascade or not vulnerable)\n",
                std::string{cdn::vendor_name(fcdn)}.c_str(),
                std::string{cdn::vendor_name(bcdn)}.c_str());
    return 1;
  }
  std::printf("OBR through %s -> %s (case %s):\n",
              std::string{cdn::vendor_name(fcdn)}.c_str(),
              std::string{cdn::vendor_name(bcdn)}.c_str(), m.exploited_case.c_str());
  std::printf("  max n           : %zu overlapping ranges\n", m.max_n);
  std::printf("  origin -> BCDN  : %llu B\n",
              static_cast<unsigned long long>(m.bcdn_origin_response_bytes));
  std::printf("  BCDN -> FCDN    : %llu B\n",
              static_cast<unsigned long long>(m.fcdn_bcdn_response_bytes));
  std::printf("  amplification   : %.0fx\n", m.amplification);
  return 0;
}

int cmd_campaign(cdn::Vendor vendor, int rps, int seconds) {
  const auto config = core::SbrCampaignConfig::Builder()
                          .vendor(vendor)
                          .requests_per_second(rps)
                          .duration_s(seconds)
                          .build();
  const auto result = core::run_sbr_campaign(config);
  std::printf("SBR campaign: %s, %d req/s x %d s across %zu edge nodes\n",
              std::string{cdn::vendor_name(vendor)}.c_str(), rps, seconds,
              result.per_node_upstream_bytes.size());
  std::printf("  origin sent      : %.1f MB (%s)\n",
              result.origin.response_bytes / 1048576.0,
              result.bandwidth.saturated ? "uplink SATURATED" : "below capacity");
  std::printf("  attacker received: %.1f KB  (amplification %.0fx)\n",
              result.attacker.response_bytes / 1024.0, result.amplification);
  std::printf("  detector         : %s (asymmetry %.0f, tiny %.0f%%, miss %.0f%%)\n",
              result.detector_alarmed ? "ALARM" : "silent",
              result.detector_stats.asymmetry,
              100 * result.detector_stats.tiny_fraction,
              100 * result.detector_stats.miss_fraction);
  const auto unit = core::measure_sbr(vendor, config.file_size);
  const auto cost = core::estimate_campaign_cost(
      core::price_plan(vendor), unit.client_response_bytes,
      unit.origin_response_bytes, rps, 24.0);
  std::printf("  projected victim cost at this rate for 24 h: $%.0f\n",
              cost.total_usd);
  return 0;
}

int cmd_autoplan(cdn::Vendor vendor, std::uint64_t size_mb) {
  const auto result = core::autoplan_sbr(vendor, size_mb << 20);
  std::printf("Auto-planned SBR against %s (%llu MB target):\n\n",
              std::string{cdn::vendor_name(vendor)}.c_str(),
              static_cast<unsigned long long>(size_mb));
  core::Table table({"candidate case", "sends", "amplification"});
  for (const auto& c : result.candidates) {
    table.add_row({c.plan.description, std::to_string(c.plan.sends),
                   core::fixed(c.amplification, 0)});
  }
  std::printf("%s\nbest: %s -> %.0fx\n", table.to_markdown().c_str(),
              result.best.description.c_str(), result.amplification);
  return 0;
}

int cmd_spec(const char* path, std::uint64_t size_mb) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto probe = cdn::parse_profile_spec(buffer.str(), &error);
  if (!probe) {
    std::fprintf(stderr, "spec error: %s\n", error.c_str());
    return 2;
  }
  std::printf("Loaded profile '%s' from %s\n\n", probe->traits.name.c_str(), path);

  // Scan + auto-plan against the custom profile.
  const auto factory = [&] { return *cdn::parse_profile_spec(buffer.str()); };
  core::Table scan({"probe", "origin saw", "note"});
  for (const auto& probe_case : core::standard_forward_probes()) {
    core::SingleCdnTestbed bed(factory());
    bed.origin().resources().add_synthetic("/t.bin", size_mb << 20);
    auto req = http::make_get("site.example", "/t.bin?cb=1");
    req.headers.add("Range", probe_case.range.to_string());
    bed.send(req);
    std::string saw;
    for (const auto& r : bed.origin().request_log()) {
      if (!saw.empty()) saw += " & ";
      const auto range = r.headers.get_or("Range", "");
      saw += range.empty() ? "None" : std::string{range};
    }
    // Amplifying = full entity pulled while the client got a sliver.
    const bool amplified =
        bed.origin_traffic().response_bytes() >= (size_mb << 20) &&
        bed.client_traffic().response_bytes() < (size_mb << 20) / 4;
    scan.add_row({probe_case.label, saw, amplified ? "SBR-AMPLIFIES" : ""});
  }
  std::printf("%s\n", scan.to_markdown().c_str());

  const auto plan = core::autoplan_sbr(factory, size_mb << 20);
  std::printf("auto-planned worst case: %s -> %.0fx single-shot amplification\n",
              plan.best.description.c_str(), plan.amplification);

  // The verdict uses sustained amplification: 50 repeats of the best case
  // with rotated cache-busting queries.  Defenses that amortize (slice
  // caches, ignore-query rules) only show up here.
  core::SingleCdnTestbed bed(factory());
  bed.origin().resources().add_synthetic("/t.bin", size_mb << 20);
  std::uint64_t origin_mid = 0, client_mid = 0;
  for (int i = 0; i < 50; ++i) {
    if (i == 25) {
      origin_mid = bed.origin_traffic().response_bytes();
      client_mid = bed.client_traffic().response_bytes();
    }
    auto req = http::make_get("site.example", "/t.bin?cb=" + std::to_string(i));
    req.headers.add("Range", plan.best.range.to_string());
    for (int s = 0; s < plan.best.sends; ++s) bed.send(req);
  }
  // Marginal amplification over the second half of the campaign: cold-start
  // fills (slice caches warming up) do not count against a defense.
  const double origin_tail = static_cast<double>(
      bed.origin_traffic().response_bytes() - origin_mid);
  const double client_tail = static_cast<double>(
      bed.client_traffic().response_bytes() - client_mid);
  const double sustained = client_tail == 0 ? 0 : origin_tail / client_tail;
  std::printf("sustained marginal (requests 26..50, rotated queries): "
              "%.0fx -> %s\n",
              sustained, sustained > 10.0 ? "VULNERABLE" : "resistant");
  return sustained > 10.0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* cmd = argc > 1 ? argv[1] : "help";
  if (std::strcmp(cmd, "vendors") == 0) return cmd_vendors();
  if (std::strcmp(cmd, "scan") == 0) {
    return cmd_scan(vendor_arg(argc > 2 ? argv[2] : nullptr,
                               cdn::Vendor::kAkamai));
  }
  if (std::strcmp(cmd, "sbr") == 0) {
    return cmd_sbr(vendor_arg(argc > 2 ? argv[2] : nullptr,
                              cdn::Vendor::kAkamai),
                   argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 25);
  }
  if (std::strcmp(cmd, "obr") == 0) {
    return cmd_obr(vendor_arg(argc > 2 ? argv[2] : nullptr,
                              cdn::Vendor::kCloudflare),
                   vendor_arg(argc > 3 ? argv[3] : nullptr,
                              cdn::Vendor::kAkamai));
  }
  if (std::strcmp(cmd, "autoplan") == 0) {
    return cmd_autoplan(vendor_arg(argc > 2 ? argv[2] : nullptr,
                                   cdn::Vendor::kAkamai),
                        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 25);
  }
  if (std::strcmp(cmd, "spec") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: rangeamp_cli spec <file> [size-mb]\n");
      return 2;
    }
    return cmd_spec(argv[2], argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10);
  }
  if (std::strcmp(cmd, "campaign") == 0) {
    return cmd_campaign(vendor_arg(argc > 2 ? argv[2] : nullptr,
                                   cdn::Vendor::kCloudflare),
                        argc > 3 ? std::atoi(argv[3]) : 10,
                        argc > 4 ? std::atoi(argv[4]) : 10);
  }
  std::printf(
      "rangeamp_cli -- RangeAmp attack toolkit (simulated substrate)\n\n"
      "usage:\n"
      "  rangeamp_cli vendors\n"
      "  rangeamp_cli scan  [vendor]\n"
      "  rangeamp_cli sbr   [vendor] [size-mb]\n"
      "  rangeamp_cli obr   [fcdn] [bcdn]\n"
      "  rangeamp_cli campaign [vendor] [req-per-s] [seconds]\n"
      "  rangeamp_cli autoplan [vendor] [size-mb]\n"
      "  rangeamp_cli spec <profile-spec-file> [size-mb]\n");
  return std::strcmp(cmd, "help") == 0 ? 0 : 2;
}
