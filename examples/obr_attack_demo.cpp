// OBR attack demo: the section IV-C scenario end-to-end.
//
// The attacker cascades two CDNs (Fig 3b): a front CDN that forwards
// multi-range headers unchanged and a back CDN that answers with one part
// per range, overlap unchecked.  One request with n overlapping "0-" ranges
// makes the BCDN ship ~n copies of the resource across the fcdn-bcdn link,
// while the attacker aborts early and the origin serves the 1 KB file once.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

int main() {
  const cdn::Vendor fcdn = cdn::Vendor::kCloudflare;
  const cdn::Vendor bcdn = cdn::Vendor::kAkamai;

  std::printf("OBR attack: %s (FCDN, Bypass rule) cascaded onto %s (BCDN)\n\n",
              std::string{cdn::vendor_name(fcdn)}.c_str(),
              std::string{cdn::vendor_name(bcdn)}.c_str());

  // Let the planner find the biggest multi-range header the cascade accepts.
  const core::ObrMeasurement m = core::measure_obr(fcdn, bcdn);
  std::printf("exploited case    : %s\n", m.exploited_case.c_str());
  std::printf("max n             : %zu overlapping ranges\n", m.max_n);
  std::printf("origin -> BCDN    : %12llu B   (1 KB resource, served once)\n",
              static_cast<unsigned long long>(m.bcdn_origin_response_bytes));
  std::printf("BCDN -> FCDN      : %12llu B   (%.1f MB of multipart parts!)\n",
              static_cast<unsigned long long>(m.fcdn_bcdn_response_bytes),
              m.fcdn_bcdn_response_bytes / 1048576.0);
  std::printf("attacker received : %12llu B   (aborted the connection early)\n",
              static_cast<unsigned long long>(m.client_response_bytes));
  std::printf("amplification     : %.0fx between the two CDNs\n\n", m.amplification);
  std::printf("Both CDN nodes burned bandwidth on each other; the attacker\n"
              "paid for one request header and a handful of response bytes.\n");
  return 0;
}
