// Protocol trace: the paper's Fig 4 (SBR) and Fig 5 (OBR) message flows,
// rendered from live exchanges on the simulated substrate.
//
// Transcript handlers are spliced between every hop, so the output shows
// exactly what crosses each connection segment -- including the deleted
// Range header on the cdn-origin leg and the n-part multipart response on
// the fcdn-bcdn leg.
#include <cstdio>

#include "core/rangeamp.h"
#include "net/transcript.h"

using namespace rangeamp;

namespace {

void trace_sbr() {
  std::printf("================ SBR attack flow (paper Fig 4) ================\n\n");
  net::Transcript transcript;

  origin::OriginServer origin;
  origin.resources().add_synthetic("/10MB.bin", 10u << 20);
  net::TranscriptHandler origin_tap("cdn-origin", transcript, origin);

  cdn::CdnNode cdn(cdn::make_profile(cdn::Vendor::kCloudflare), origin_tap);
  net::TranscriptHandler cdn_tap("client-cdn", transcript, cdn);

  auto request = http::make_get("victim.example.com", "/10MB.bin?rand=0401");
  request.headers.add("Range", "bytes=0-0");
  cdn_tap.handle(request);

  std::printf("%s", transcript.render(16).c_str());
}

void trace_obr() {
  std::printf("================ OBR attack flow (paper Fig 5) ================\n\n");
  net::Transcript transcript;

  auto origin_config = core::obr_origin_config();
  origin::OriginServer origin(origin_config);
  origin.resources().add_synthetic("/1KB.bin", 1024);
  net::TranscriptHandler origin_tap("bcdn-origin", transcript, origin);

  cdn::CdnNode bcdn(cdn::make_profile(cdn::Vendor::kAkamai), origin_tap);
  net::TranscriptHandler bcdn_tap("fcdn-bcdn", transcript, bcdn);

  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  cdn::CdnNode fcdn(cdn::make_profile(cdn::Vendor::kCloudflare, bypass),
                    bcdn_tap);
  net::TranscriptHandler fcdn_tap("client-fcdn", transcript, fcdn);

  // A small n keeps the trace readable; the real attack uses n = 10750.
  auto request = http::make_get("victim.example.com", "/1KB.bin");
  request.headers.add(
      "Range", core::obr_range_case(cdn::Vendor::kCloudflare, 4).to_string());
  fcdn_tap.handle(request);

  std::printf("%s", transcript.render(0).c_str());
}

}  // namespace

int main() {
  trace_sbr();
  trace_obr();
  std::printf("Note the asymmetry: the origin ships the whole resource for a\n"
              "1-byte range (SBR), and the BCDN ships one copy per overlapping\n"
              "range while pulling the resource once (OBR).\n");
  return 0;
}
