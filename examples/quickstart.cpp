// Quickstart: host a site behind a simulated CDN, watch range requests flow.
//
// Builds the paper's Fig 1 topology (client -> CDN -> origin) with a
// Cloudflare-flavored profile, then walks through the basic mechanics the
// attacks build on: a cache miss pulling the full entity, a cache hit served
// locally, and a tiny range request that makes the origin ship the whole
// resource -- the Small Byte Range amplification in miniature.
#include <cstdio>

#include "core/rangeamp.h"

using namespace rangeamp;

namespace {

void show_traffic(const char* what, core::SingleCdnTestbed& bed) {
  std::printf("  %-34s client-cdn: %8llu B   cdn-origin: %8llu B\n", what,
              static_cast<unsigned long long>(bed.client_traffic().response_bytes()),
              static_cast<unsigned long long>(bed.origin_traffic().response_bytes()));
  bed.client_traffic().reset();
  bed.origin_traffic().reset();
}

}  // namespace

int main() {
  std::printf("RangeAmp quickstart: a website behind a (simulated) CDN\n\n");

  core::SingleCdnTestbed bed(cdn::make_profile(cdn::Vendor::kCloudflare));
  bed.origin().resources().add_synthetic("/site/banner.jpg", 512 * 1024,
                                         "image/jpeg");

  // 1. A normal first request: cache miss, the CDN pulls the full entity.
  auto request = http::make_get("shop.example.com", "/site/banner.jpg");
  auto response = bed.send(request);
  std::printf("GET /site/banner.jpg            -> %d (%llu body bytes)\n",
              response.status,
              static_cast<unsigned long long>(response.body.size()));
  show_traffic("cold cache (miss, full pull):", bed);

  // 2. The same request again: cache hit, zero origin traffic.
  response = bed.send(request);
  std::printf("GET /site/banner.jpg (again)    -> %d from cache\n", response.status);
  show_traffic("warm cache (hit):", bed);

  // 3. A legitimate range request served from cache.
  request.headers.set("Range", "bytes=0-1023");
  response = bed.send(request);
  std::printf("GET Range: bytes=0-1023         -> %d (%s)\n", response.status,
              std::string{response.headers.get_or("Content-Range", "?")}.c_str());
  show_traffic("ranged request from cache:", bed);

  // 4. The attack shape: a 1-byte range with a cache-busting query.  The
  //    CDN's Deletion policy pulls the whole 512 KB from the origin while
  //    the client receives well under 1 KB.
  request.target = "/site/banner.jpg?nocache=1";
  request.headers.set("Range", "bytes=0-0");
  response = bed.send(request);
  std::printf("GET Range: bytes=0-0 (cache-bust) -> %d, client got %llu B total\n",
              response.status,
              static_cast<unsigned long long>(http::serialized_size(response)));
  const double af =
      static_cast<double>(bed.origin_traffic().response_bytes()) /
      static_cast<double>(bed.client_traffic().response_bytes());
  show_traffic("SBR shape (miss, tiny range):", bed);
  std::printf("\nThat last exchange amplified the attacker's traffic %.0fx.\n", af);
  std::printf("Run sbr_attack_demo / obr_attack_demo for the full attacks.\n");
  return 0;
}
